"""Time-to-first-byte model (the paper's §6 "delay" concern).

The conclusion singles out latency as the GPU approach's "major
drawback" versus ASIC/FPGA/optical generators.  This module makes that
trade-off quantitative: before the first random byte arrives the host
must launch a kernel, every lane must run the cipher's initialisation
clocks, and the first staged buffer must travel back over PCIe.  The
model composes those terms so the latency/throughput frontier of
Figure 10's configurations can be tabulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.kernels import KernelProfile, kernel_profiles
from repro.gpu.launch import LaunchConfig, occupancy
from repro.gpu.specs import GPUSpec, get_gpu

__all__ = ["LatencyModel", "INIT_CLOCKS", "first_byte_latency_us"]

#: Initialisation clocks before the first keystream bit, per kernel
#: (from the cipher specs: MICKEY loads IV+key then preclocks 100,
#: Grain preclocks 160 after loading, Trivium 1152, AES-CTR none).
INIT_CLOCKS: dict[str, int] = {
    "mickey2": 80 + 80 + 100,  # IV load + key load + preclock
    "grain": 160,
    "trivium": 1152,
    "aes128ctr": 0,
    "curand-mt": 624,  # state twist on first use
    "curand-xorwow": 0,
    "curand-philox": 0,
}

#: Fixed host-side kernel-launch cost (microseconds) — the well-known
#: ~5-10 us CUDA launch overhead; we take the middle of that range.
_LAUNCH_US = 7.0
#: PCIe 3.0 x16 effective bandwidth for the copy-back (GB/s).
_PCIE_GBS = 12.0
#: PCIe transaction setup latency (microseconds).
_PCIE_SETUP_US = 10.0


@dataclass(frozen=True)
class LatencyModel:
    """Latency estimates for one (kernel, GPU, launch) configuration."""

    kernel: KernelProfile
    gpu: GPUSpec
    launch: LaunchConfig = LaunchConfig()

    @classmethod
    def of(cls, kernel_name: str, gpu_name: str, launch: LaunchConfig | None = None) -> "LatencyModel":
        """Build a model from kernel/GPU names."""
        try:
            kernel = kernel_profiles()[kernel_name]
        except KeyError:
            raise ModelError(f"unknown kernel {kernel_name!r}") from None
        return cls(kernel, get_gpu(gpu_name), launch or LaunchConfig())

    @property
    def init_clocks(self) -> int:
        """Cipher initialisation clocks before the first output bit."""
        return INIT_CLOCKS.get(self.kernel.name, 0)

    def clock_time_us(self) -> float:
        """Wall time of one bank clock (all resident lanes) in us.

        One clock issues ``gates_per_bit`` logic ops per lane-bit; the
        SM array retires them at the logic issue rate times occupancy.
        """
        occ = occupancy(self.gpu, self.kernel.registers_per_thread, self.launch.threads_per_block)
        lanes = self.launch.lanes(self.kernel.datapath_lanes)
        ops = self.kernel.gates_per_bit * lanes / max(self.kernel.datapath_lanes, 1)
        rate = self.gpu.logic_ops_per_s * occ
        return ops / rate * 1e6

    def init_time_us(self) -> float:
        """Cipher initialisation before the first output bit."""
        return self.init_clocks * self.clock_time_us()

    def transfer_time_us(self, n_bytes: int) -> float:
        """Copy-back of the first *n_bytes* over PCIe."""
        if n_bytes < 0:
            raise ModelError("n_bytes must be non-negative")
        return _PCIE_SETUP_US + n_bytes / (_PCIE_GBS * 1e3)

    def first_byte_us(self, stage_bytes: int = 8192) -> float:
        """Launch + init + first staged buffer + copy-back."""
        # bits to fill the first stage buffer, emitted one plane per clock
        lanes = self.launch.lanes(self.kernel.datapath_lanes)
        fill_clocks = max(1, (8 * stage_bytes) // max(lanes, 1))
        return (
            _LAUNCH_US
            + self.init_time_us()
            + fill_clocks * self.clock_time_us()
            + self.transfer_time_us(stage_bytes)
        )


def first_byte_latency_us(kernel_name: str, gpu_name: str, stage_bytes: int = 8192) -> float:
    """Convenience wrapper: modeled time-to-first-byte in microseconds."""
    return LatencyModel.of(kernel_name, gpu_name).first_byte_us(stage_bytes)
