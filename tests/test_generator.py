"""BSRNG facade: buffering, draw types, algorithm registry."""

import numpy as np
import pytest

from repro import BSRNG, available_algorithms
from repro.errors import SpecificationError


class TestRegistry:
    def test_lists_all_algorithms(self):
        algs = available_algorithms()
        for expected in ("mickey2", "grain", "aes128ctr", "mt19937", "xorwow", "philox"):
            assert expected in algs

    def test_unknown_algorithm(self):
        with pytest.raises(SpecificationError):
            BSRNG("rot13")


@pytest.mark.parametrize("alg", ["mickey2", "grain", "aes128ctr", "mt19937", "philox"])
class TestDraws:
    def test_deterministic(self, alg):
        a = BSRNG(alg, seed=9, lanes=64).random_uint64(32)
        b = BSRNG(alg, seed=9, lanes=64).random_uint64(32)
        assert np.array_equal(a, b)

    def test_seed_sensitivity(self, alg):
        a = BSRNG(alg, seed=1, lanes=64).random_uint64(32)
        b = BSRNG(alg, seed=2, lanes=64).random_uint64(32)
        assert not np.array_equal(a, b)

    def test_stream_continuity(self, alg):
        """Chunked draws must concatenate to one contiguous stream."""
        whole = BSRNG(alg, seed=5, lanes=64).random_uint64(300)
        r = BSRNG(alg, seed=5, lanes=64)
        parts = np.concatenate([r.random_uint64(7), r.random_uint64(200), r.random_uint64(93)])
        assert np.array_equal(whole, parts)

    def test_uint32(self, alg):
        out = BSRNG(alg, seed=3, lanes=64).random_uint32(11)
        assert out.shape == (11,) and out.dtype == np.uint32

    def test_bytes(self, alg):
        out = BSRNG(alg, seed=3, lanes=64).random_bytes(13)
        assert isinstance(out, bytes) and len(out) == 13

    def test_bits(self, alg):
        out = BSRNG(alg, seed=3, lanes=64).random_bits(77)
        assert out.shape == (77,) and set(np.unique(out)) <= {0, 1}

    def test_floats_in_unit_interval(self, alg):
        f = BSRNG(alg, seed=3, lanes=64).random(1000)
        assert np.all((f >= 0.0) & (f < 1.0))
        assert 0.4 < f.mean() < 0.6

    def test_random_shape(self, alg):
        f = BSRNG(alg, seed=3, lanes=64).random((3, 5))
        assert f.shape == (3, 5)

    def test_integers_range(self, alg):
        v = BSRNG(alg, seed=3, lanes=64).integers(-5, 10, size=500)
        assert v.min() >= -5 and v.max() < 10

    def test_normal_moments(self, alg):
        z = BSRNG(alg, seed=3, lanes=64).normal(4000)
        assert abs(z.mean()) < 0.12 and abs(z.std() - 1.0) < 0.1


class TestEdgeCases:
    def test_zero_draws(self):
        r = BSRNG("mt19937", seed=0, lanes=8)
        assert r.random_uint64(0).size == 0
        assert r.random_bytes(0) == b""

    def test_negative_rejected(self):
        r = BSRNG("mt19937", seed=0, lanes=8)
        with pytest.raises(SpecificationError):
            r.random_uint64(-1)

    def test_integers_validation(self):
        r = BSRNG("mt19937", seed=0, lanes=8)
        with pytest.raises(SpecificationError):
            r.integers(5, 5)

    def test_gates_per_output_bit(self):
        assert BSRNG("mickey2", seed=0, lanes=64).gates_per_output_bit() > 0
        assert np.isfinite(BSRNG("mickey2", seed=0, lanes=64).gates_per_output_bit())

    def test_bitsliced_cross_dtype_stream_consistency(self):
        """The word stream must not depend on buffering geometry."""
        a = BSRNG("grain", seed=4, lanes=64).random_bytes(64)
        b = BSRNG("grain", seed=4, lanes=64).random_bytes(64)
        assert a == b


class TestSeedExpansion:
    def test_lane_count_changes_stream(self):
        a = BSRNG("mickey2", seed=1, lanes=32).random_uint64(8)
        b = BSRNG("mickey2", seed=1, lanes=64).random_uint64(8)
        assert not np.array_equal(a, b)

    def test_splitmix_reference(self):
        from repro.core.seeding import splitmix64

        # golden value: splitmix64(0) per the reference implementation
        assert int(splitmix64(np.uint64(0))) == 0xE220A8397B1DCDAF


class TestSpawn:
    def test_children_are_independent(self):
        from repro import BSRNG

        parent = BSRNG("xorwow", seed=5, lanes=64)
        kids = parent.spawn(4)
        streams = [k.random_bytes(64) for k in kids] + [parent.random_bytes(64)]
        assert len(set(streams)) == 5  # pairwise distinct

    def test_deterministic_spawning(self):
        from repro import BSRNG

        a = BSRNG("trivium", seed=9, lanes=64).spawn(3)
        b = BSRNG("trivium", seed=9, lanes=64).spawn(3)
        for x, y in zip(a, b):
            assert x.random_bytes(32) == y.random_bytes(32)

    def test_children_inherit_algorithm_and_lanes(self):
        from repro import BSRNG

        kid = BSRNG("grain", seed=1, lanes=128).spawn(1)[0]
        assert kid.algorithm == "grain" and kid.lanes == 128

    def test_spawn_validation(self):
        from repro import BSRNG
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            BSRNG("xorwow", seed=1, lanes=64).spawn(0)

    def test_child_lanes_uncorrelated(self):
        from repro import BSRNG
        from repro.analysis import lane_correlation_matrix, max_abs_offdiag

        kids = BSRNG("xorwow", seed=2, lanes=64).spawn(4)
        lanes = np.stack([k.random_bits(20_000) for k in kids])
        assert max_abs_offdiag(lane_correlation_matrix(lanes)) < 0.05
