"""Buffered bit-stream writers and NIST-format exporters.

The NIST SP 800-22 reference suite (sts-2.1.2) reads either ASCII streams
of ``'0'``/``'1'`` characters or raw binary files; both writers are
provided so generated sequences can also be validated against the
reference C suite when it is available.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO

import numpy as np

from repro.bitio.bits import as_bit_array, bits_to_bytes

__all__ = ["BitWriter", "write_nist_ascii", "write_nist_binary"]


class BitWriter:
    """Accumulate bit chunks and expose them as one contiguous array.

    The writer mirrors the paper's shared-memory staging discipline: output
    words are appended to an in-memory list (cheap, "shared memory") and
    only concatenated to the final buffer ("global memory") when the stream
    is finalised.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._n_bits = 0

    def __len__(self) -> int:
        return self._n_bits

    def write(self, bits) -> None:
        """Append a chunk of bits (any array-like of 0/1)."""
        arr = as_bit_array(bits).ravel()
        if arr.size:
            self._chunks.append(arr)
            self._n_bits += arr.size

    def getvalue(self) -> np.ndarray:
        """Return all written bits as one array (does not clear)."""
        if not self._chunks:
            return np.zeros(0, dtype=np.uint8)
        if len(self._chunks) > 1:
            merged = np.concatenate(self._chunks)
            self._chunks = [merged]
        return self._chunks[0]

    def clear(self) -> None:
        """Discard everything written so far."""
        self._chunks.clear()
        self._n_bits = 0


def write_nist_ascii(bits, path: str | os.PathLike | io.TextIOBase) -> int:
    """Write bits as ASCII ``0``/``1`` (the sts ``-F a`` input format).

    Returns the number of bits written.
    """
    arr = as_bit_array(bits).ravel()
    text = np.char.mod("%d", arr)
    payload = "".join(text.tolist())
    if isinstance(path, io.TextIOBase):
        path.write(payload)
    else:
        with open(path, "w", encoding="ascii") as fh:
            fh.write(payload)
    return arr.size


def write_nist_binary(bits, path: str | os.PathLike | BinaryIO) -> int:
    """Write bits packed little-bit-order (the sts ``-F r`` input format).

    Returns the number of bytes written.
    """
    payload = bits_to_bytes(bits)
    if hasattr(path, "write") and not isinstance(path, (str, os.PathLike)):
        path.write(payload)
    else:
        with open(path, "wb") as fh:
            fh.write(payload)
    return len(payload)
