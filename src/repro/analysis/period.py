"""Parallel-stream period and overlap estimates (paper §4.3).

The paper warns that when many LFSR lanes run the same recurrence, "the
secure threshold for the repeat period (not 2^n − 1 in this case) of the
employed parallel system should be estimated".  Lanes of a shared-cycle
generator are windows of one periodic sequence at unknown offsets: if two
windows overlap, their outputs are identical shifted copies.  These
helpers quantify that risk.
"""

from __future__ import annotations

import math

from repro.errors import SpecificationError

__all__ = [
    "stream_overlap_probability",
    "effective_period_log2",
    "safe_stream_length",
]


def stream_overlap_probability(
    period_log2: float, n_streams: int, stream_len_log2: float
) -> float:
    """Probability that any two of *n_streams* random-offset windows of
    length ``2^stream_len_log2`` on a cycle of length ``2^period_log2``
    overlap (birthday bound, union form).

    For ``n`` streams each consuming ``L`` values of a period-``P``
    cycle, the standard bound is ``p <= n^2 L / P``; it is computed in
    log space so astronomically small probabilities survive.
    """
    if n_streams < 1:
        raise SpecificationError("need at least one stream")
    if period_log2 <= 0 or stream_len_log2 < 0:
        raise SpecificationError("period and stream length must be positive")
    if stream_len_log2 >= period_log2:
        return 1.0
    log2_p = 2 * math.log2(n_streams) + stream_len_log2 - period_log2
    if log2_p >= 0:
        return 1.0
    return 2.0**log2_p


def effective_period_log2(n: int, n_streams: int) -> float:
    """log2 of the per-stream budget when *n_streams* lanes share one
    maximal cycle of a degree-*n* primitive LFSR.

    The full cycle has ``2^n - 1`` states; carving it into *n_streams*
    provably-disjoint jump-ahead segments gives each lane a budget of
    ``(2^n - 1) / n_streams`` outputs — the "not 2^n − 1 in this case"
    the paper flags.
    """
    if n < 2 or n_streams < 1:
        raise SpecificationError("need n >= 2 and n_streams >= 1")
    return n + math.log2(1 - 2.0**-n) - math.log2(n_streams)


def safe_stream_length(
    period_log2: float, n_streams: int, max_collision_prob: float = 2.0**-40
) -> float:
    """log2 of the longest per-stream draw keeping the overlap
    probability below *max_collision_prob* for randomly-offset streams.

    Inverting the birthday bound: ``L <= p * P / n^2``.
    """
    if not 0 < max_collision_prob <= 1:
        raise SpecificationError("max_collision_prob must be in (0, 1]")
    if n_streams < 1 or period_log2 <= 0:
        raise SpecificationError("need streams >= 1 and a positive period")
    return period_log2 + math.log2(max_collision_prob) - 2 * math.log2(n_streams)
