"""Zero-copy output ring: shared-memory slots instead of pickled payloads.

The parallel result paths — :class:`~repro.gpu.multigpu.MultiDeviceGenerator`
pool workers, fleet members — used to ship every generated chunk back to
the parent as message *payload bytes*: pickled into a pipe, copied into
the queue buffer, copied back out, unpickled.  For multi-megabyte chunks
the serialisation round-trip costs more than generating the bytes did.

:class:`SharedMemoryRing` replaces that with fixed-size slots in one
``multiprocessing.shared_memory`` segment.  The controller creates the
ring and hands each dispatched job a slot index; the worker attaches by
name (cached per process), writes its payload straight into the slot,
and returns a :class:`RingSlotRef` — three small ints and a string —
through the existing message plane.  The controller reads the bytes back
out of its own mapping.  Payload bytes cross the process boundary
**zero** times through the pickle machinery.

Integrity under concurrency is delegated to the receipt layer rather
than locks: slot ownership follows job assignment (one writer per slot
at a time in the happy path), and if an evicted-but-unkilled worker ever
races a reassigned slot, the torn bytes fail the existing CRC receipt
check and the chunk is retried — the same path a corrupted pickled
payload would take.  The fault drills in ``tests/test_ring.py`` exercise
exactly that.

Lifecycle: the creating process owns the segment and unlinks it on
:meth:`close` (also covered by ``with``).  If the owner dies without
closing — SIGTERM, SIGKILL, a crash — Python's ``resource_tracker``
(a separate watchdog process) unlinks the segment, so rings cannot leak
past the owning process's lifetime.  Attachers only ever ``close`` their
mapping; they never unlink.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro import obs
from repro.errors import SpecificationError

__all__ = ["RingSlotRef", "SharedMemoryRing", "attach_ring"]


@dataclass(frozen=True)
class RingSlotRef:
    """A picklable pointer to payload bytes parked in a ring slot."""

    ring: str  #: shared-memory segment name
    slot: int
    length: int


class SharedMemoryRing:
    """Fixed-slot shared-memory buffer for cross-process result passing.

    Parameters
    ----------
    slot_bytes / slots:
        Slot capacity and count.  Size the pool to the maximum number of
        in-flight results (the controller enforces single-writer slots
        by tying a slot to a job for the job's lifetime).
    name:
        Attach to an existing segment instead of creating one.  The
        creator owns (and eventually unlinks) the segment; attachers
        share the mapping read-write but never unlink.
    """

    def __init__(self, slot_bytes: int, slots: int, *, name: str | None = None) -> None:
        if slot_bytes <= 0 or slots <= 0:
            raise SpecificationError("slot_bytes and slots must be positive")
        self.slot_bytes = int(slot_bytes)
        self.slots = int(slots)
        self.owner = name is None
        if self.owner:
            self.shm = shared_memory.SharedMemory(create=True, size=self.slot_bytes * self.slots)
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            if self.shm.size < self.slot_bytes * self.slots:
                self.shm.close()
                raise SpecificationError(
                    f"segment {name} holds {self.shm.size}B, ring needs "
                    f"{self.slot_bytes * self.slots}B"
                )
        self._closed = False

    @classmethod
    def try_create(cls, slot_bytes: int, slots: int) -> "SharedMemoryRing | None":
        """Create a ring, or ``None`` where shared memory is unavailable
        (callers then fall back to pickled payloads)."""
        try:
            return cls(slot_bytes, slots)
        except (OSError, ValueError):  # pragma: no cover - platform-dependent
            return None

    @property
    def name(self) -> str:
        """Segment name — the attach key workers receive in their spec."""
        return self.shm.name

    @property
    def spec(self) -> tuple[str, int, int]:
        """Picklable ``(name, slot_bytes, slots)`` for job/worker specs."""
        return (self.name, self.slot_bytes, self.slots)

    def _check_slot(self, slot: int, length: int) -> None:
        if not 0 <= slot < self.slots:
            raise SpecificationError(f"slot {slot} outside ring of {self.slots}")
        if not 0 <= length <= self.slot_bytes:
            raise SpecificationError(f"{length}B exceeds slot capacity {self.slot_bytes}B")

    def write(self, slot: int, data: bytes) -> RingSlotRef:
        """Park *data* in *slot*; returns the ref to send instead.

        Accounting happens on the receiving side (:meth:`resolve`), not
        here: writes run in worker processes after the scoped worker
        registry has already been snapshotted, so counts incremented
        here would never reach the parent.
        """
        self._check_slot(slot, len(data))
        start = slot * self.slot_bytes
        self.shm.buf[start : start + len(data)] = data
        return RingSlotRef(ring=self.name, slot=slot, length=len(data))

    def read(self, ref: RingSlotRef) -> bytes:
        """Copy a parked payload back out of the mapping."""
        if ref.ring != self.name:
            raise SpecificationError(f"ref names ring {ref.ring!r}, this is {self.name!r}")
        self._check_slot(ref.slot, ref.length)
        start = ref.slot * self.slot_bytes
        return bytes(self.shm.buf[start : start + ref.length])

    def resolve(self, obj):
        """Payload resolver hook: refs become bytes, all else passes through.

        Installed on :class:`~repro.robust.supervisor.PartitionSupervisor`
        so returned payloads are materialised *before* CRC verification —
        a torn or stale slot write is then indistinguishable from a
        corrupted transfer and handled by the same retry policy.  Counts
        how many payload bytes travelled through the ring versus through
        the pickled fallback, which is what the zero-copy regression
        tests assert on.
        """
        if isinstance(obj, RingSlotRef):
            if obs.metrics_enabled():
                obs.inc("repro_ring_slot_writes_total", 1)
                obs.inc("repro_ring_payload_bytes_total", obj.length)
            return self.read(obj)
        if isinstance(obj, (bytes, bytearray)) and obs.metrics_enabled():
            obs.inc("repro_result_pickled_payload_bytes_total", len(obj))
        return obj

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass

    def __enter__(self) -> "SharedMemoryRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        return f"SharedMemoryRing({self.name}, {self.slots}x{self.slot_bytes}B, {role})"


#: Per-process attach cache: a worker serving many jobs maps each ring
#: once, not once per job.  Keyed by PID so fork children re-attach.
_ATTACHED: dict[tuple[int, str], SharedMemoryRing] = {}


def attach_ring(name: str, slot_bytes: int, slots: int) -> SharedMemoryRing:
    """Worker-side cached attach (one mapping per process per ring)."""
    key = (os.getpid(), name)
    ring = _ATTACHED.get(key)
    if ring is None or ring._closed:
        ring = SharedMemoryRing(slot_bytes, slots, name=name)
        _ATTACHED[key] = ring
    return ring
