"""The long-lived fleet worker: register, heartbeat, serve chunk leases.

Where the pool workers of :mod:`repro.gpu.multigpu` live for exactly one
partition (``maxtasksperchild=1``), a fleet worker is a *member*: it
registers once, heartbeats on the controller's interval, and serves
counter-space chunk jobs until told to stop, killed, or evicted.  Each
payload goes through the same shared
:func:`~repro.robust.supervisor.worker_attempt` shell as the pool
workers — fault-plan hooks keyed by ``(worker_id, job_index)``, a scoped
metrics registry shipped back with every result, CRC computed before any
injected corruption — so the controller's receipt verification sees a
bleeding transfer exactly the way the batch supervisor would.

Failure modelling is deliberately honest:

* a ``crash`` fault raises out of the loop and kills the process — the
  controller sees a dead carrier, not a polite error message;
* a ``delay`` fault sleeps on the job thread, which *also* stalls
  heartbeats (the loop is single-threaded on purpose: a truly wedged
  device cannot keep heartbeating), so a long stall trips the liveness
  deadline;
* ``hb_silence`` keeps the worker computing but mute — the classic
  partitioned-but-alive member whose late results must be dropped;
* ``slow_bleed`` flips bytes in every payload after the CRC, modelling
  a degrading link that accumulates receipt strikes until eviction.
"""

from __future__ import annotations

import queue as queue_mod
import signal
import time

from repro import obs
from repro.core.ring import attach_ring
from repro.obs import flight
from repro.robust.faults import FaultPlan
from repro.robust.supervisor import worker_attempt
from repro.serve.engine import RangeSource
from repro.fleet.transport import ChunkJob, Message, WorkerSpec

__all__ = ["fleet_worker_main"]


def fleet_worker_main(worker_id: int, spec: WorkerSpec, jobs, out) -> None:
    """Worker process entry point (module-level: spawn-picklable).

    ``jobs`` delivers :class:`ChunkJob` items (``None`` = graceful
    stop); ``out`` receives this worker's :class:`Message` stream.
    """
    # a fork inherits the parent's signal dispositions — under the serve
    # daemon that includes an asyncio SIGTERM handler which would swallow
    # the controller's terminate() and leave an unkillable member
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # a fork-inherited parent registry must not double-count; each job's
    # metrics are collected in worker_attempt's scoped registry instead
    obs.disable_metrics()
    obs.disable_tracing()
    # a fork also inherits the daemon's flight recorder (role and ring);
    # re-enable fresh so this member's black box carries its own story
    if flight.enabled():
        rec = flight.recorder()
        flight.enable(rec.directory, role=f"fleet-worker-{worker_id}")
    try:
        _worker_loop(worker_id, spec, jobs, out)
    except BaseException as exc:
        # the black box is the only record a crashed member leaves —
        # the message plane just sees a dead carrier
        flight.record("worker-crash", worker=worker_id, error=f"{type(exc).__name__}: {exc}")
        flight.dump("worker-crash")
        raise


def _worker_loop(worker_id: int, spec: WorkerSpec, jobs, out) -> None:
    plan = FaultPlan.from_json(spec.plan_json) if spec.plan_json else FaultPlan.from_env()
    source = RangeSource(spec.stream, max_streams=spec.max_streams)
    out.put(Message("register", worker_id))
    job_index = 0
    last_heartbeat = time.monotonic()
    # poll briskly relative to the heartbeat interval so a due heartbeat
    # is never late by more than a fraction of the interval
    poll_s = min(max(spec.heartbeat_interval / 4.0, 0.01), 0.25)
    while True:
        now = time.monotonic()
        silenced = plan is not None and plan.silences(worker_id, job_index)
        if not silenced and now - last_heartbeat >= spec.heartbeat_interval:
            out.put(Message("heartbeat", worker_id))
            last_heartbeat = now
        try:
            job: ChunkJob | None = jobs.get(timeout=poll_s)
        except queue_mod.Empty:
            continue
        if job is None:
            out.put(Message("bye", worker_id, detail="drained"))
            return
        flight.record("job-start", worker=worker_id, job=job.job_id, offset=job.offset)

        def produce(job: ChunkJob = job) -> bytes:
            data = source.read_range(job.offset, job.length)
            obs.inc("repro_fleet_worker_jobs_total", 1)
            obs.inc("repro_fleet_worker_bytes_total", len(data))
            return data

        # crash faults raise out of here and kill the process — the
        # controller must discover a dead carrier, not read an excuse
        payload, crc, metrics, spans = worker_attempt(
            worker_id,
            job_index,
            spec.plan_json,
            spec.verify_crc,
            produce,
            trace=job.trace,
            span_name="fleet.worker_chunk",
            process_name=f"fleet-worker-{worker_id}",
        )
        if plan is not None:
            payload = plan.bleed(worker_id, job_index, payload)
        # park the payload (post-bleed, so drilled corruption reaches the
        # controller's receipt check like a damaged transfer) in this
        # job's leased ring slot and send just the ref; jobs dispatched
        # without a slot — ring off, or slot pool exhausted — fall back
        # to shipping payload bytes through the message plane
        ref = None
        if spec.ring is not None and job.ring_slot is not None:
            ring_name, slot_bytes, slots = spec.ring
            if len(payload) <= slot_bytes:
                ring = attach_ring(ring_name, slot_bytes, slots)
                ref = ring.write(job.ring_slot, payload)
                payload = b""
        out.put(
            Message(
                "result",
                worker_id,
                job_id=job.job_id,
                payload=payload,
                crc=crc,
                metrics=metrics,
                spans=spans,
                ref=ref,
            )
        )
        job_index += 1
