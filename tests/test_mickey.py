"""MICKEY 2.0: specification conformance, cross-validation, codegen parity."""

import numpy as np
import pytest

from repro.ciphers._mickey_tables import (
    COMP0_BITS,
    COMP1_BITS,
    FB0_BITS,
    FB1_BITS,
    R_TAPS_BITS,
    RTAPS,
)
from repro.ciphers.mickey import Mickey2
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.mickey_circuit import mickey_clock_circuit, mickey_cuda_source
from repro.core.engine import BitslicedEngine
from repro.errors import KeyScheduleError

# The spec's published R tap list (Babbage & Dodd 2006, §3.1).
SPEC_RTAPS = {
    0, 1, 3, 4, 5, 6, 9, 12, 13, 16, 19, 20, 21, 22, 25, 28, 37, 38, 41, 42,
    45, 46, 50, 52, 54, 56, 58, 60, 61, 63, 64, 65, 66, 67, 71, 72, 79, 80,
    81, 82, 87, 88, 89, 90, 91, 92, 94, 95, 96, 97,
}


class TestTables:
    def test_rtaps_match_spec(self):
        assert RTAPS == SPEC_RTAPS
        assert set(np.flatnonzero(R_TAPS_BITS)) == SPEC_RTAPS

    def test_table_lengths(self):
        for t in (R_TAPS_BITS, COMP0_BITS, COMP1_BITS, FB0_BITS, FB1_BITS):
            assert t.shape == (100,)
            assert set(np.unique(t)) <= {0, 1}

    def test_fb_masks_differ(self):
        # FB0 and FB1 drive the two clocking branches; identical masks
        # would make the control bit vacuous.
        assert not np.array_equal(FB0_BITS, FB1_BITS)


class TestReference:
    def test_deterministic(self):
        a = Mickey2("0123456789abcdef0123", "00112233")
        b = Mickey2("0123456789abcdef0123", "00112233")
        assert np.array_equal(a.keystream(128), b.keystream(128))

    def test_key_length_enforced(self):
        with pytest.raises(KeyScheduleError):
            Mickey2("0011")

    def test_iv_length_cap(self):
        with pytest.raises(KeyScheduleError):
            Mickey2("00" * 10, np.zeros(81, dtype=np.uint8))

    def test_empty_iv_allowed(self):
        ks = Mickey2("00" * 10).keystream(16)
        assert ks.size == 16

    def test_different_ivs_diverge(self):
        a = Mickey2("aa" * 10, "00000000")
        b = Mickey2("aa" * 10, "00000001")
        assert not np.array_equal(a.keystream(128), b.keystream(128))

    def test_different_keys_diverge(self):
        a = Mickey2("aa" * 10)
        b = Mickey2("ab" * 10)
        assert not np.array_equal(a.keystream(128), b.keystream(128))

    def test_state_nonzero_after_init(self):
        m = Mickey2("00" * 10)
        r, s = m.state()
        assert r.any() or s.any()

    def test_keystream_bytes_msb_first(self):
        m = Mickey2("0123456789abcdef0123", "00112233")
        bits = Mickey2("0123456789abcdef0123", "00112233").keystream(16)
        by = m.keystream_bytes(2)
        assert by[0] == int("".join(map(str, bits[:8])), 2)

    def test_balanced_output(self):
        ks = Mickey2("137f0a2b4c5d6e8f9a0b", "deadbeef").keystream(4096)
        assert abs(ks.mean() - 0.5) < 0.05


class TestBitslicedCrossValidation:
    @pytest.mark.parametrize("iv_len", [0, 23, 40, 80])
    def test_lanes_equal_reference(self, small_engine, iv_len, rng):
        n = small_engine.n_lanes
        keys = rng.integers(0, 2, size=(n, 80), dtype=np.uint8)
        ivs = rng.integers(0, 2, size=(n, iv_len), dtype=np.uint8) if iv_len else None
        bank = BitslicedMickey2(small_engine)
        bank.load(keys, ivs)
        ks = bank.keystream_bits(48)
        for lane in range(n):
            ref = Mickey2(keys[lane], ivs[lane] if iv_len else ())
            assert np.array_equal(ks[lane], ref.keystream(48)), f"lane {lane}"

    def test_shape_validation(self, small_engine):
        bank = BitslicedMickey2(small_engine)
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((small_engine.n_lanes, 79), dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.load(
                np.zeros((small_engine.n_lanes, 80), dtype=np.uint8),
                np.zeros((small_engine.n_lanes, 81), dtype=np.uint8),
            )

    def test_generation_before_load_rejected(self):
        bank = BitslicedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.next_planes(1)

    def test_seed_shared_key_distinct_ivs(self):
        eng = BitslicedEngine(n_lanes=16, dtype=np.uint16)
        bank = BitslicedMickey2(eng).seed(42)
        lanes = bank.keystream_bits(256)
        # all lanes distinct
        assert len({lane.tobytes() for lane in lanes}) == 16

    def test_seed_reproducible(self):
        mk = lambda: BitslicedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint8)).seed(7)
        assert np.array_equal(mk().keystream_bits(64), mk().keystream_bits(64))

    def test_gate_accounting_increases(self):
        eng = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bank = BitslicedMickey2(eng).seed(1)
        eng.reset_gate_counts()
        bank.next_planes(10)
        assert eng.counter.total == 10 * sum(bank._gates_per_clock.values())

    def test_gates_per_output_bit_positive(self):
        bank = BitslicedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        assert bank.gates_per_output_bit() > 500


class TestGeneratedCircuit:
    def test_circuit_matches_reference_many_states(self, rng):
        circ = mickey_clock_circuit(mixing=False)
        one = np.uint64(1)
        for trial in range(5):
            ref = Mickey2(rng.integers(0, 2, 80, dtype=np.uint8))
            r0, s0 = ref.state()
            z = ref.next_bit()
            r1, s1 = ref.state()
            inputs = {f"r{i}": np.array([np.uint64(0xFFFFFFFFFFFFFFFF) if r0[i] else np.uint64(0)]) for i in range(100)}
            inputs |= {f"s{i}": np.array([np.uint64(0xFFFFFFFFFFFFFFFF) if s0[i] else np.uint64(0)]) for i in range(100)}
            inputs["input_bit"] = np.array([np.uint64(0)])
            out = circ.evaluate(inputs)
            assert int(out["z"][0] & one) == z
            assert all(int(out[f"nr{i}"][0] & one) == r1[i] for i in range(100))
            assert all(int(out[f"ns{i}"][0] & one) == s1[i] for i in range(100))

    def test_mixing_variant_differs(self):
        assert (
            mickey_clock_circuit(True).gate_counts()["total"]
            != mickey_clock_circuit(False).gate_counts()["total"]
        )

    def test_cuda_emission_well_formed(self):
        src = mickey_cuda_source()
        assert "__device__" in src
        assert "*out_z =" in src
        assert src.count("{") == src.count("}")

    def test_circuit_depth_is_shallow(self):
        # the whole clock is a shallow network — the property that makes
        # one-thread-many-lanes execution latency-tolerant
        assert mickey_clock_circuit().depth() <= 8
