"""E10 — §4.2: bitsliced CRC with zero per-stream overhead.

The paper's Fig. 5/6 claim: the bitsliced register file computes CRCs
for 32 (here: lanes) data streams "simultaneously without any
computational overhead".  Measured as per-stream cost vs lane count —
flat for the bitsliced variant, constant-per-stream (so total grows
linearly) for the serial one.
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table, measure_gbps

from repro.core.engine import BitslicedEngine
from repro.crc import CRC8_ATM, BitslicedCRC, SerialCRC

MSG_BITS = 4096 if FULL_SCALE else 1024
LANE_COUNTS = (64, 256, 1024, 4096)


def test_crc_scaling(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    for lanes in LANE_COUNTS:
        msgs = rng.integers(0, 2, (lanes, MSG_BITS), dtype=np.uint8)
        bs = BitslicedCRC(CRC8_ATM, BitslicedEngine(n_lanes=lanes))
        gbps = measure_gbps(lambda b=bs, m=msgs: b.checksum_messages(m), lanes * MSG_BITS, repeat=2)
        rows.append((lanes, gbps))

    # serial baseline on a few streams (bit-at-a-time, pure Python loop)
    ser = SerialCRC(CRC8_ATM)
    few = rng.integers(0, 2, (4, MSG_BITS), dtype=np.uint8)

    def serial_all():
        return [ser.checksum(m) for m in few]

    serial_gbps = measure_gbps(serial_all, 4 * MSG_BITS, repeat=2)

    lines = [
        f"CRC-8 over {MSG_BITS}-bit messages",
        "",
        f"{'streams':>9}{'bitsliced Gbit/s':>18}{'Gbit/s per stream':>19}",
        "-" * 46,
    ]
    for lanes, gbps in rows:
        lines.append(f"{lanes:>9}{gbps:>18.4f}{gbps / lanes:>19.6f}")
    lines.append(f"{'serial':>9}{serial_gbps:>18.4f}{serial_gbps / 4:>19.6f}")
    lines.append("")
    lines.append(
        f"bitsliced @4096 lanes vs bit-serial: {rows[-1][1] / serial_gbps:.0f}x total throughput"
    )
    emit_table("ablation_crc", lines)
    emit_bench(
        "ablation_crc",
        params={"msg_bits": MSG_BITS, "lane_counts": list(LANE_COUNTS)},
        gbps=rows[-1][1],
        metrics={
            "gbps_by_lanes": {str(l): g for l, g in rows},
            "serial_gbps": serial_gbps,
            "speedup_vs_serial": rows[-1][1] / serial_gbps,
        },
    )
    benchmark.extra_info["gbps"] = {str(l): round(g, 4) for l, g in rows}
    bs = BitslicedCRC(CRC8_ATM, BitslicedEngine(n_lanes=256))
    msgs = rng.integers(0, 2, (256, MSG_BITS), dtype=np.uint8)
    benchmark.pedantic(lambda: bs.checksum_messages(msgs), rounds=2, iterations=1)

    # "without any computational overhead": total throughput grows with
    # lanes (per-clock work is lane-count independent) ...
    assert rows[-1][1] > rows[0][1] * 4
    # ... and crushes the bit-serial register implementation.
    assert rows[-1][1] > 20 * serial_gbps


def test_crc_correctness_at_scale(benchmark):
    """The speedup must not cost correctness: 4096 lanes cross-checked
    against the byte-table oracle."""
    from repro.crc import crc_table_lookup

    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (4096, MSG_BITS // 8), dtype=np.uint8)
    bits = np.unpackbits(data, axis=1, bitorder="big")

    def run():
        bs = BitslicedCRC(CRC8_ATM, BitslicedEngine(n_lanes=4096))
        return bs.checksum_messages(bits)

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    expect = crc_table_lookup(CRC8_ATM, data)
    assert np.array_equal(got, expect)
