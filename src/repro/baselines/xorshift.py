"""xorshift128+ — the modern descendant of Brent's xorgens family, which
produced the strongest prior GPU result in the paper's Table 1
(xorgensGP, 527.5 Gbps on a GTX 480; Nandapalan et al. 2011)."""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank
from repro.core.seeding import splitmix64

__all__ = ["Xorshift128PlusBank"]


class Xorshift128PlusBank(StreamBank):
    """``n_streams`` xorshift128+ generators in lockstep."""

    word_dtype = np.uint64
    # 3 shifts + 3 xors + 1 add + swap ≈ 8 instructions / 64-bit word.
    ops_per_word = 8.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        self._s0 = splitmix64(stream_seeds)
        self._s1 = splitmix64(self._s0)
        # all-zero state is absorbing; splitmix64 of distinct inputs makes
        # it astronomically unlikely, but guard anyway.
        dead = (self._s0 | self._s1) == 0
        self._s0[dead] = np.uint64(0x9E3779B97F4A7C15)

    def _step(self) -> np.ndarray:
        x = self._s0
        y = self._s1
        self._s0 = y
        x = x ^ (x << np.uint64(23))
        self._s1 = x ^ y ^ (x >> np.uint64(17)) ^ (y >> np.uint64(26))
        return self._s1 + y
