#!/usr/bin/env python
"""Streaming-QA overhead benchmark: generation with and without the monitor.

Generates one BSRNG stream twice — plain, and through a
:class:`~repro.qa.streaming.StreamingEvaluator` running the default
streaming plugin set — and reports both throughputs plus the per-window
plugin cost breakdown from the ``repro_qa_plugin_seconds`` histogram.

The regression-gated ratio is **retained throughput**:
``speedup.qa_vs_plain`` = end-to-end MB/s (generate + monitor) over
plain generation MB/s.  Both legs run the same bitsliced kernels on the
same machine, so the ratio is a property of the plugin set's cost
relative to generation — not of the runner's absolute speed — and
transfers across machines the way the fused-kernel speedups do.  The
default ``--sample 8`` models the serving sidecar's sampled mode;
inline full-rate evaluation (``--sample 1``) is the worst case.  A
plugin that silently becomes quadratic, or an evaluator that starts
copying windows, drags the ratio down and trips the trend gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_qa_stream.py
    python tools/bench_trend.py --results-dir benchmarks/results
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _emit import emit_bench  # noqa: E402

from repro import obs  # noqa: E402
from repro.core.generator import BSRNG  # noqa: E402
from repro.qa import StreamingEvaluator  # noqa: E402


def time_generate(args) -> tuple[float, list[bytes]]:
    """Baseline leg: plain generation, chunk by chunk (the serve shape)."""
    rng = BSRNG(args.algorithm, seed=11, lanes=args.lanes)
    chunks = []
    t0 = time.perf_counter()
    for _ in range(args.chunks):
        chunks.append(rng.random_bytes(args.chunk_bytes))
    return time.perf_counter() - t0, chunks


def time_qa(chunks: list[bytes], window_bytes: int, sample: int):
    evaluator = StreamingEvaluator(window_bytes=window_bytes, sample=sample)
    t0 = time.perf_counter()
    for chunk in chunks:
        evaluator.feed(chunk)
    return time.perf_counter() - t0, evaluator


def plugin_seconds(reg) -> dict:
    """Per-plugin evaluation cost from the obs histogram, seconds."""
    out: dict = {}
    for entry in reg.snapshot()["metrics"]:
        if entry["name"] == "repro_qa_plugin_seconds":
            out[entry["labels"]["plugin"]] = round(entry["sum"], 6)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="trivium")
    parser.add_argument("--lanes", type=int, default=256)
    parser.add_argument("--chunks", type=int, default=64)
    parser.add_argument("--chunk-bytes", type=int, default=1 << 16)
    parser.add_argument("--window-bytes", type=int, default=1 << 14)
    parser.add_argument("--sample", type=int, default=8)
    args = parser.parse_args(argv)

    total_mb = args.chunks * args.chunk_bytes / 1e6

    gen_s, chunks = time_generate(args)
    with obs.scoped() as reg:
        eval_s, evaluator = time_qa(chunks, args.window_bytes, args.sample)
        per_plugin = plugin_seconds(reg)

    status = evaluator.status()
    plain_mbps = total_mb / gen_s
    qa_mbps = total_mb / (gen_s + eval_s)
    retained = qa_mbps / plain_mbps

    print(f"stream: {args.algorithm}, {total_mb:.1f} MB in {args.chunks} chunks")
    print(f"generate  : {gen_s * 1e3:8.1f} ms  ({plain_mbps:9.1f} MB/s)")
    print(
        f"+ QA      : {eval_s * 1e3:8.1f} ms eval  ({qa_mbps:9.1f} MB/s end-to-end)"
        f"  [{len(status['plugins'])} plugins, {status['windows_seen']} windows, "
        f"sample={args.sample}]"
    )
    print(f"retained  : {retained:.4f}x of plain throughput")
    worst = sorted(per_plugin.items(), key=lambda kv: -kv[1])[:5]
    for name, seconds in worst:
        print(f"  {name:<28s} {seconds * 1e3:8.1f} ms total")
    if not status["healthy"]:
        print(f"WARNING: latched on reference stream: {status['latched']}")
        return 1

    path = emit_bench(
        "qa_stream",
        params={
            "algorithm": args.algorithm,
            "lanes": args.lanes,
            "chunks": args.chunks,
            "chunk_bytes": args.chunk_bytes,
            "window_bytes": args.window_bytes,
            "sample": args.sample,
            "plugins": len(status["plugins"]),
        },
        gbps=qa_mbps * 8 / 1e3,
        wall_s=gen_s + eval_s,
        metrics={
            "plain_mbps": plain_mbps,
            "qa_mbps": qa_mbps,
            "speedup": {"qa_vs_plain": retained},
            "windows": status["windows_seen"],
            "plugin_seconds": per_plugin,
        },
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
