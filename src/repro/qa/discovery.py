"""Plugin discovery: builtins, entry points, environment modules.

Discovery populates a :class:`~repro.qa.registry.PluginRegistry` from
three sources in a fixed, documented order (DESIGN.md §15):

1. **Builtins** — :func:`repro.qa.adapters.register_builtins`: the
   SP 800-22 adapters in Table-3 order, then the analysis adapters,
   then the dieharder-inspired tests, then the structure detectors.
2. **Entry points** — installed distributions advertising the group
   ``repro.qa_plugins``, loaded in sorted entry-point-name order.
3. **Environment** — ``REPRO_QA_PLUGINS``, a comma- (or
   ``os.pathsep``-) separated list of importable module paths, loaded
   in listed order.  This is the zero-packaging path: drop a module on
   ``PYTHONPATH`` and export its name (``examples/qa_plugin.py``).

An entry point or module contributes plugins by exposing either a
``register(registry)`` callable or a ``QA_PLUGINS`` iterable of
:class:`~repro.qa.plugin_api.QAPlugin`.  Within one source order is the
provider's; across sources it is the numbered order above, so the same
environment always yields the same registry — the determinism the
differential conformance tests rely on.

Name collisions raise: a third-party plugin may not silently shadow a
builtin (call ``registry.register(..., replace=True)`` from a
``register`` hook to override deliberately).  A source that fails to
import raises :class:`~repro.errors.SpecificationError` naming the
offender rather than half-loading.
"""

from __future__ import annotations

import importlib
import os

from repro.errors import SpecificationError
from repro.qa.plugin_api import QAPlugin
from repro.qa.registry import PluginRegistry

__all__ = ["discover", "load_module_plugins", "ENTRY_POINT_GROUP", "PLUGINS_ENV"]

#: Packaging entry-point group third-party distributions advertise.
ENTRY_POINT_GROUP = "repro.qa_plugins"

#: Environment variable naming extra plugin modules (comma-separated).
PLUGINS_ENV = "REPRO_QA_PLUGINS"


def _adopt(registry: PluginRegistry, provider, source: str) -> int:
    """Let one provider (module or entry-point object) contribute."""
    n0 = len(registry)
    register = getattr(provider, "register", None)
    if callable(register):
        register(registry)
        return len(registry) - n0
    plugins = getattr(provider, "QA_PLUGINS", None)
    if plugins is None and callable(provider):
        # an entry point may target the register callable directly
        provider(registry)
        return len(registry) - n0
    if plugins is None:
        raise SpecificationError(
            f"QA plugin source {source!r} exposes neither register(registry) "
            "nor a QA_PLUGINS iterable"
        )
    for plugin in plugins:
        if not isinstance(plugin, QAPlugin):
            raise SpecificationError(
                f"QA plugin source {source!r}: QA_PLUGINS must contain "
                f"QAPlugin instances, got {type(plugin).__name__}"
            )
        registry.register(
            plugin if plugin.source != "builtin" else _stamp(plugin, source)
        )
    return len(registry) - n0


def _stamp(plugin: QAPlugin, source: str) -> QAPlugin:
    from dataclasses import replace

    return replace(plugin, source=source)


def load_module_plugins(registry: PluginRegistry, module_path: str) -> int:
    """Import one module and adopt its plugins; returns how many."""
    try:
        module = importlib.import_module(module_path)
    except ImportError as exc:
        raise SpecificationError(
            f"cannot import QA plugin module {module_path!r}: {exc}"
        ) from exc
    return _adopt(registry, module, f"module:{module_path}")


def _entry_points():
    """The ``repro.qa_plugins`` entry points, sorted by name."""
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py3.10+ always has it
        return []
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        eps = entry_points().get(ENTRY_POINT_GROUP, [])
    return sorted(eps, key=lambda ep: ep.name)


def discover(registry: PluginRegistry) -> PluginRegistry:
    """Populate *registry* from all three sources, documented order."""
    from repro.qa.adapters import register_builtins

    register_builtins(registry)
    for ep in _entry_points():
        try:
            provider = ep.load()
        except Exception as exc:
            raise SpecificationError(
                f"QA plugin entry point {ep.name!r} failed to load: {exc}"
            ) from exc
        _adopt(registry, provider, f"entry-point:{ep.name}")
    env = os.environ.get(PLUGINS_ENV, "")
    for module_path in env.replace(os.pathsep, ",").split(","):
        module_path = module_path.strip()
        if module_path:
            load_module_plugins(registry, module_path)
    return registry
