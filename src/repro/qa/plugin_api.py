"""The QA plugin contract: what a randomness test must declare.

A plugin is a named, self-describing statistical test over a bit
sequence.  The contract (DESIGN.md §15) is deliberately small:

* ``name`` — unique registry key (also the battery column name).
* ``min_bits`` — the declared data requirement.  A caller that cannot
  supply ``min_bits`` bits must not invoke the plugin; the streaming
  evaluator uses this to decide window eligibility, and the battery
  relies on the plugin itself raising/returning a skip when a sequence
  is still too short for its *content-dependent* requirements.
* ``run(bits)`` — returns a :class:`PluginResult`.  Skips are
  first-class: a test given insufficient data answers
  ``status="skipped"`` with a reason, never a pass and never a crash
  (:class:`~repro.errors.InsufficientDataError` raised by a wrapped
  callable is converted).  Any other exception is a real bug and
  propagates.
* capability flags — ``battery`` (p-values are uniform under H0, so the
  NIST-style aggregation of :class:`~repro.nist.suite.SuiteReport` is
  meaningful) and ``streaming`` (cheap enough to run per window online).
  Detectors with conservative/Bonferroni p-values set ``battery=False``;
  they still stream, where only the failure tail matters.

``alpha`` is the per-invocation failure threshold the *streaming*
evaluator compares ``min(p_values)`` against (the battery applies NIST's
aggregate criteria instead and ignores it).  Calibration tests
(``tests/test_qa_calibration.py``) hold every builtin plugin to it: the
false-positive rate on reference randomness must be statistically
consistent with ``alpha``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro import obs
from repro.errors import InsufficientDataError, SpecificationError

__all__ = ["PluginResult", "QAPlugin", "as_battery_plugin"]


@dataclass(frozen=True)
class PluginResult:
    """One plugin invocation's outcome.

    ``status`` is ``"ok"`` (``p_values`` populated) or ``"skipped"``
    (``reason`` populated, no p-values — the declared or content-derived
    data requirement was unmet).  ``statistics`` carries any named
    numbers worth reporting (test statistic, counts, estimates).
    """

    status: str
    p_values: tuple[float, ...] = ()
    statistics: dict = field(default_factory=dict)
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in ("ok", "skipped"):
            raise SpecificationError("status must be 'ok' or 'skipped'")
        if self.status == "ok" and not self.p_values:
            raise SpecificationError("an 'ok' result needs at least one p-value")
        if self.status == "skipped" and self.p_values:
            raise SpecificationError("a skipped result carries no p-values")
        object.__setattr__(
            self, "p_values", tuple(float(np.clip(p, 0.0, 1.0)) for p in self.p_values)
        )

    @property
    def ok(self) -> bool:
        """True when the plugin actually ran (not a skip)."""
        return self.status == "ok"

    @property
    def p_value(self) -> float:
        """Minimum p-value (the conservative scalar); skips have none."""
        if not self.p_values:
            raise SpecificationError("skipped result has no p-value")
        return min(self.p_values)

    @classmethod
    def skipped(cls, reason: str) -> "PluginResult":
        """The canonical skip result."""
        return cls(status="skipped", reason=reason)


@dataclass(frozen=True)
class QAPlugin:
    """One registered randomness test (see module docstring for the contract).

    ``fn`` is the underlying callable ``fn(bits, **params) ->
    TestResult | PluginResult | iterable-of-p-values``; :meth:`run`
    normalises all three return styles and converts
    :class:`~repro.errors.InsufficientDataError` into a skip.  ``cost``
    is the relative wall-cost on a ~100k-bit input (Frequency = 1), the
    same scale as :data:`repro.nist.parallel.TEST_COST` — the streaming
    evaluator's default plugin set excludes outliers.
    """

    name: str
    fn: Callable
    family: str = "custom"
    min_bits: int = 1
    params: dict = field(default_factory=dict)
    alpha: float = 1e-6
    battery: bool = True
    streaming: bool = True
    cost: float = 1.0
    source: str = "builtin"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("plugin name must be non-empty")
        if self.min_bits < 1:
            raise SpecificationError("min_bits must be positive")
        if not 0.0 < self.alpha < 1.0:
            raise SpecificationError("alpha must be in (0, 1)")
        if not callable(self.fn):
            raise SpecificationError(f"plugin {self.name}: fn must be callable")

    def run(self, bits) -> PluginResult:
        """Execute the test; skips (never raises) on insufficient data.

        The callable's own :class:`~repro.errors.InsufficientDataError`
        is authoritative — its message becomes the skip reason, so a
        wrapped SP 800-22 test skips with *exactly* the reason the
        legacy battery recorded.  The declared ``min_bits`` floor is a
        safety net: a callable that blows up some other way on an input
        below its declared floor skips too (third-party plugins need not
        implement their own length checks), while anything it raises on
        *sufficient* data is a real bug and propagates.
        """
        arr = np.asarray(bits)
        try:
            raw = self.fn(arr, **self.params)
        except InsufficientDataError as exc:
            return PluginResult.skipped(str(exc))
        except Exception:
            if arr.size < self.min_bits:
                return PluginResult.skipped(
                    f"{self.name} requires at least {self.min_bits} bits, "
                    f"got {arr.size}"
                )
            raise
        return self._coerce(raw)

    def timed_run(self, bits) -> PluginResult:
        """:meth:`run` instrumented into ``repro_qa_plugin_seconds``."""
        t0 = time.perf_counter()
        try:
            return self.run(bits)
        finally:
            obs.observe(
                "repro_qa_plugin_seconds", time.perf_counter() - t0, plugin=self.name
            )

    def _coerce(self, raw) -> PluginResult:
        if isinstance(raw, PluginResult):
            return raw
        # TestResult duck-type: the SP 800-22 result container
        p_values = getattr(raw, "p_values", None)
        if p_values is not None:
            return PluginResult(
                status="ok",
                p_values=tuple(p_values),
                statistics=dict(getattr(raw, "statistics", {}) or {}),
            )
        if isinstance(raw, (int, float)):
            return PluginResult(status="ok", p_values=(float(raw),))
        try:
            return PluginResult(status="ok", p_values=tuple(raw))
        except TypeError:
            raise SpecificationError(
                f"plugin {self.name}: fn returned {type(raw).__name__}, expected "
                "PluginResult, TestResult, a p-value or an iterable of p-values"
            ) from None

    def with_params(self, **params) -> "QAPlugin":
        """A copy with updated params (calibration harness knob)."""
        return replace(self, params={**self.params, **params})

    def with_alpha(self, alpha: float) -> "QAPlugin":
        """A copy with a different streaming failure threshold."""
        return replace(self, alpha=alpha)

    def describe(self) -> dict:
        """JSON-able metadata row (``repro qa list``, ``/v1/status``)."""
        return {
            "name": self.name,
            "family": self.family,
            "min_bits": self.min_bits,
            "alpha": self.alpha,
            "battery": self.battery,
            "streaming": self.streaming,
            "cost": self.cost,
            "source": self.source,
            "params": dict(self.params),
            "description": self.description,
        }


def as_battery_plugin(name: str, fn: Callable) -> QAPlugin:
    """Wrap a bare battery callable (``fn(bits) -> TestResult``).

    This is how the legacy ``run_suite(tests={name: fn})`` call style
    enters the plugin world: no declared floor (``min_bits=1`` — the
    callable raises its own :class:`~repro.errors.InsufficientDataError`
    exactly as it always did), battery-capable, no params.
    """
    return QAPlugin(name=name, fn=fn, family="adhoc", min_bits=1, source="caller")
