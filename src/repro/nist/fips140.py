"""FIPS 140-2 statistical battery (the classic hardware-RNG power-up gate).

Four fixed-bound tests over exactly one 20,000-bit block — no p-values,
just accept/reject windows.  Included alongside SP 800-22 because this is
the battery the hardware TRNGs the paper compares against (FPGA/optical,
§3) are certified with, and it makes a cheap always-on sanity gate for
generator banks: microseconds instead of the full NIST run.

Bounds are the FIPS 140-2 (change notice 1) values:

* monobit: ones count in (9,725, 10,275)
* poker (m=4): statistic X in (2.16, 46.17)
* runs: per-length windows (see ``RUNS_INTERVALS``)
* long run: no run of 26 or more equal bits
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import InsufficientDataError

__all__ = [
    "BLOCK_BITS",
    "RUNS_INTERVALS",
    "monobit_check",
    "poker_check",
    "runs_check",
    "long_run_check",
    "fips140_battery",
    "Fips140Report",
]

BLOCK_BITS = 20_000

#: Acceptance intervals for run lengths 1..5 and 6+ (each direction).
RUNS_INTERVALS: dict[int, tuple[int, int]] = {
    1: (2315, 2685),
    2: (1114, 1386),
    3: (527, 723),
    4: (240, 384),
    5: (103, 209),
    6: (103, 209),  # 6 and longer, aggregated
}


def _block(bits) -> np.ndarray:
    arr = as_bit_array(bits).ravel()
    if arr.size < BLOCK_BITS:
        raise InsufficientDataError(f"FIPS 140-2 needs {BLOCK_BITS} bits, got {arr.size}")
    return arr[:BLOCK_BITS]


def monobit_check(bits) -> tuple[bool, int]:
    """Ones count must fall in (9725, 10275).  Returns (ok, count)."""
    count = int(_block(bits).sum())
    return 9725 < count < 10275, count


def poker_check(bits) -> tuple[bool, float]:
    """4-bit poker statistic must fall in (2.16, 46.17).

    X = (16/5000) * sum(f_i^2) - 5000 over the 5000 non-overlapping
    nibbles.  Returns (ok, X).
    """
    arr = _block(bits).reshape(5000, 4)
    weights = np.array([8, 4, 2, 1], dtype=np.int64)
    vals = arr @ weights
    counts = np.bincount(vals, minlength=16).astype(np.float64)
    x = (16.0 / 5000.0) * float((counts**2).sum()) - 5000.0
    return 2.16 < x < 46.17, x


def _run_lengths(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lengths and values of the maximal runs in *arr*."""
    change = np.flatnonzero(np.diff(arr)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [arr.size]])
    return ends - starts, arr[starts]


def runs_check(bits) -> tuple[bool, dict]:
    """Counts of runs of each length (per bit value) must fall in the
    FIPS windows.  Returns (ok, {(value, length): count})."""
    arr = _block(bits)
    lengths, values = _run_lengths(arr)
    capped = np.minimum(lengths, 6)
    detail: dict[tuple[int, int], int] = {}
    ok = True
    for value in (0, 1):
        for length, (lo, hi) in RUNS_INTERVALS.items():
            count = int(np.count_nonzero((capped == length) & (values == value)))
            detail[(value, length)] = count
            ok &= lo <= count <= hi
    return ok, detail


def long_run_check(bits) -> tuple[bool, int]:
    """No run of length >= 26 may occur.  Returns (ok, longest)."""
    lengths, _ = _run_lengths(_block(bits))
    longest = int(lengths.max())
    return longest < 26, longest


@dataclass
class Fips140Report:
    """Outcome of the four checks on one 20,000-bit block."""

    monobit_ok: bool
    poker_ok: bool
    runs_ok: bool
    long_run_ok: bool
    statistics: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when all four checks pass."""
        return self.monobit_ok and self.poker_ok and self.runs_ok and self.long_run_ok

    def to_table(self) -> str:
        """Render the four verdicts as a small text table."""
        rows = [
            ("Monobit", self.monobit_ok, f"ones={self.statistics['ones']}"),
            ("Poker", self.poker_ok, f"X={self.statistics['poker_x']:.2f}"),
            ("Runs", self.runs_ok, "per-length windows"),
            ("LongRun", self.long_run_ok, f"longest={self.statistics['longest_run']}"),
        ]
        lines = [f"{'Test':<10}{'Result':>8}  Detail", "-" * 40]
        for name, ok, detail in rows:
            lines.append(f"{name:<10}{'pass' if ok else 'FAIL':>8}  {detail}")
        return "\n".join(lines)


def fips140_battery(bits) -> Fips140Report:
    """Run all four FIPS 140-2 checks on the first 20,000 bits."""
    m_ok, ones = monobit_check(bits)
    p_ok, x = poker_check(bits)
    r_ok, run_detail = runs_check(bits)
    l_ok, longest = long_run_check(bits)
    return Fips140Report(
        m_ok,
        p_ok,
        r_ok,
        l_ok,
        statistics={
            "ones": ones,
            "poker_x": x,
            "runs": run_detail,
            "longest_run": longest,
        },
    )
