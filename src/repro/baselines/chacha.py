"""ChaCha20 (Bernstein 2008; RFC 8439 flavour) — the ARX stream cipher
modern kernels use for ``/dev/urandom``.

Add-rotate-xor designs carry their diffusion in 32-bit adds, which do
not decompose into cheap independent bit planes (every carry chain would
become a ripple of gates) — the textbook example of a cipher the paper's
bitslicing approach does *not* suit.  Included row-major, vectorized
across streams and counter-parallel within each stream, as the strongest
software baseline.

The block function is validated against the RFC 8439 §2.3.2 test vector.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank
from repro.errors import KeyScheduleError, SpecificationError

__all__ = ["chacha20_block", "ChaCha20Bank"]

_CONST = np.array([0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32)


def _rotl(x: np.ndarray, r: int) -> np.ndarray:
    r = np.uint32(r)
    return (x << r) | (x >> (np.uint32(32) - r))


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """One quarter round in place on a (..., 16) uint32 state array."""
    sa, sb, sc, sd = state[..., a], state[..., b], state[..., c], state[..., d]
    sa += sb
    sd = _rotl(sd ^ sa, 16)
    sc += sd
    sb = _rotl(sb ^ sc, 12)
    sa += sb
    sd = _rotl(sd ^ sa, 8)
    sc += sd
    sb = _rotl(sb ^ sc, 7)
    state[..., a], state[..., b], state[..., c], state[..., d] = sa, sb, sc, sd


def _rounds(state: np.ndarray) -> np.ndarray:
    """The 20-round core + feedforward on (..., 16) uint32 input states."""
    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    working += state
    return working


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte keystream block (RFC 8439 layout: 32-byte key,
    32-bit block counter, 12-byte nonce; all words little-endian)."""
    if len(key) != 32:
        raise KeyScheduleError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise KeyScheduleError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter < 1 << 32:
        raise SpecificationError("block counter must fit 32 bits")
    state = np.empty(16, dtype=np.uint32)
    state[0:4] = _CONST
    state[4:12] = np.frombuffer(key, dtype="<u4")
    state[12] = counter
    state[13:16] = np.frombuffer(nonce, dtype="<u4")
    with np.errstate(over="ignore"):
        out = _rounds(state)
    return out.astype("<u4").tobytes()


class ChaCha20Bank(StreamBank):
    """``n_streams`` ChaCha20 keystreams in lockstep (counter mode).

    Stream *i* gets its own derived key; every ``_step`` advances each
    stream by one 64-byte block, all blocks computed in one vectorized
    pass.  Counter-based like Philox/AES-CTR, so it seeks in O(1).
    """

    word_dtype = np.uint32
    # ~ (4 qr x 8 ops x 8 col/diag rounds x 10) / 16 words ≈ 70/word; adds
    # and rotates, not single gates.
    ops_per_word = 70.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        from repro.core.seeding import expand_seed_words

        k = stream_seeds.size
        self._base = np.empty((k, 16), dtype=np.uint32)
        self._base[:, 0:4] = _CONST
        key_words = np.stack(
            [expand_seed_words(int(s), 4, stream=13) for s in stream_seeds.tolist()]
        )
        self._base[:, 4:12] = key_words.view(np.uint32).reshape(k, 8)
        self._base[:, 12] = 0  # counter
        nonce_words = np.stack(
            [expand_seed_words(int(s), 2, stream=14) for s in stream_seeds.tolist()]
        )
        self._base[:, 13:16] = nonce_words.view(np.uint32).reshape(k, 4)[:, :3]
        self._counter = 0

    @property
    def words_per_block(self) -> int:
        """Words one bank step emits (the skip-ahead granularity)."""
        return 16 * self.n_streams

    def skip_blocks(self, k: int) -> None:
        """Counter-mode skipahead: jump *k* bank blocks in O(1)."""
        if k < 0:
            raise SpecificationError("cannot skip backwards")
        self._counter = (self._counter + k) & 0xFFFFFFFF

    def _step(self) -> np.ndarray:
        states = self._base.copy()
        states[:, 12] = np.uint32(self._counter)
        self._counter = (self._counter + 1) & 0xFFFFFFFF
        with np.errstate(over="ignore"):
            return _rounds(states).ravel()

    def next_words(self, n: int) -> np.ndarray:
        """At least *n* words, in whole 16-word blocks per stream."""
        if n <= 0:
            raise SpecificationError("n must be positive")
        steps = -(-n // (self.n_streams * 16))
        return np.concatenate([self._step() for _ in range(steps)])
