"""The plugin registry: ordered, validated, lazily discovered.

One process-global default registry serves the battery drivers, the
streaming evaluator, the CLI and the serving sidecar.  It is built
lazily on first use by :func:`repro.qa.discovery.discover` (builtins →
entry points → ``REPRO_QA_PLUGINS``, in that documented order) and can
be rebuilt with :func:`reset_default_registry` (tests, or after
changing the environment).

Ordering is **registration order** — deterministic because discovery
order is — and the SP 800-22 adapters register first, in
:data:`~repro.nist.suite.ALL_TESTS` (Table-3) order.  That prefix
property is what lets the plugin-driven battery reproduce the legacy
report column-for-column.

Name resolution for the battery (:func:`resolve_battery_plugin`) treats
``ALL_TESTS`` as the live primitive: an entry present there always wins
and is wrapped fresh, so a runtime-patched battery dict (the historical
extension point, still used by tests) keeps working even though the
registry snapshot was built earlier.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SpecificationError
from repro.qa.plugin_api import QAPlugin

__all__ = [
    "PluginRegistry",
    "default_registry",
    "reset_default_registry",
    "resolve_battery_plugin",
    "battery_order",
]


class PluginRegistry:
    """An insertion-ordered collection of uniquely named plugins."""

    def __init__(self) -> None:
        self._plugins: dict[str, QAPlugin] = {}

    def register(self, plugin: QAPlugin, *, replace: bool = False) -> QAPlugin:
        """Add one plugin; duplicate names raise unless ``replace``.

        Replacing keeps the original's position (the battery column
        order must not depend on when an override happened).
        """
        if not isinstance(plugin, QAPlugin):
            raise SpecificationError(
                f"expected a QAPlugin, got {type(plugin).__name__}"
            )
        if plugin.name in self._plugins and not replace:
            raise SpecificationError(
                f"plugin {plugin.name!r} is already registered "
                f"(source {self._plugins[plugin.name].source!r}); "
                "pass replace=True to override deliberately"
            )
        self._plugins[plugin.name] = plugin
        return plugin

    def register_all(self, plugins: Iterable[QAPlugin]) -> None:
        """Register several plugins in order."""
        for plugin in plugins:
            self.register(plugin)

    def get(self, name: str) -> QAPlugin:
        """The named plugin; unknown names raise with the known set."""
        try:
            return self._plugins[name]
        except KeyError:
            raise SpecificationError(
                f"unknown QA plugin {name!r}; registered: {sorted(self._plugins)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._plugins

    def __len__(self) -> int:
        return len(self._plugins)

    def __iter__(self):
        return iter(self._plugins.values())

    def names(self) -> list[str]:
        """All plugin names, registration order."""
        return list(self._plugins)

    def select(
        self,
        *,
        battery: bool | None = None,
        streaming: bool | None = None,
        family: str | None = None,
        max_cost: float | None = None,
    ) -> list[QAPlugin]:
        """Filtered plugin list, registration order."""
        out = []
        for p in self._plugins.values():
            if battery is not None and p.battery != battery:
                continue
            if streaming is not None and p.streaming != streaming:
                continue
            if family is not None and p.family != family:
                continue
            if max_cost is not None and p.cost > max_cost:
                continue
            out.append(p)
        return out

    def battery_names(self) -> list[str]:
        """Names of aggregation-capable plugins, battery column order."""
        return [p.name for p in self.select(battery=True)]

    def describe(self) -> list[dict]:
        """JSON-able rows for every plugin (CLI / status endpoints)."""
        return [p.describe() for p in self._plugins.values()]


_DEFAULT: PluginRegistry | None = None


def default_registry() -> PluginRegistry:
    """The process-global registry, discovery run on first use."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.qa.discovery import discover

        registry = PluginRegistry()
        discover(registry)
        _DEFAULT = registry
    return _DEFAULT


def reset_default_registry() -> None:
    """Drop the global registry so the next use re-discovers."""
    global _DEFAULT
    _DEFAULT = None


def resolve_battery_plugin(name: str) -> QAPlugin:
    """Battery name → plugin, with ``ALL_TESTS`` as the live primitive.

    A name present in :data:`~repro.nist.suite.ALL_TESTS` resolves to a
    fresh adapter around the *current* dict entry (runtime patches win);
    anything else resolves through the default registry — which is how
    the parallel battery shards dieharder/third-party plugins by name.
    """
    from repro.nist.suite import ALL_TESTS
    from repro.qa.adapters import nist_adapter

    if name in ALL_TESTS:
        return nist_adapter(name, ALL_TESTS[name])
    plugin = default_registry().get(name)
    if not plugin.battery:
        raise SpecificationError(
            f"plugin {name!r} is not battery-capable (its p-values are not "
            "uniform under H0); it runs under the streaming evaluator only"
        )
    return plugin


def battery_order() -> list[str]:
    """Canonical battery column order: ``ALL_TESTS`` first, then every
    other battery-capable registered plugin in registration order."""
    from repro.nist.suite import ALL_TESTS

    names = list(ALL_TESTS)
    seen = set(names)
    for name in default_registry().battery_names():
        if name not in seen:
            names.append(name)
            seen.add(name)
    return names
