"""GF(2) algebra: polynomials, Berlekamp–Massey, rank, period theory."""

import numpy as np
import pytest

from repro.core.lfsr import ReferenceLFSR
from repro.errors import SpecificationError
from repro.gf2 import (
    berlekamp_massey,
    gf2_matrix_rank,
    lfsr_period,
    linear_complexity_profile,
    pack_rows,
    poly_degree,
    poly_divmod,
    poly_from_taps,
    poly_gcd,
    poly_is_irreducible,
    poly_is_primitive,
    poly_mod,
    poly_mul,
    poly_powmod,
    rank_distribution,
    taps_from_poly,
)
from repro.gf2.linalg import gf2_matrix_rank_batch
from repro.gf2.poly import factorize


class TestPolyArithmetic:
    def test_degree(self):
        assert poly_degree(0) == -1
        assert poly_degree(1) == 0
        assert poly_degree(0b1011) == 3

    def test_mul_known(self):
        # (x+1)(x+1) = x^2+1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101

    def test_mul_distributes(self):
        a, b, c = 0b1101, 0b101, 0b11
        assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)

    def test_divmod_identity(self):
        a, b = 0b110101, 0b111
        q, r = poly_divmod(a, b)
        assert poly_mul(q, b) ^ r == a
        assert poly_degree(r) < poly_degree(b)

    def test_div_by_zero(self):
        with pytest.raises(SpecificationError):
            poly_divmod(1, 0)

    def test_gcd(self):
        # gcd((x+1)^2, (x+1)x) = x+1
        assert poly_gcd(poly_mul(0b11, 0b11), poly_mul(0b11, 0b10)) == 0b11

    def test_powmod(self):
        mod = 0b10011  # x^4+x+1, primitive
        # x^15 ≡ 1 mod primitive degree-4 poly
        assert poly_powmod(2, 15, mod) == 1
        assert poly_powmod(2, 5, mod) != 1


class TestIrreducibilityPrimitivity:
    def test_known_irreducible(self):
        assert poly_is_irreducible(0b111)  # x^2+x+1
        assert poly_is_irreducible(0b10011)  # x^4+x+1
        assert poly_is_irreducible(0x11B)  # the AES polynomial

    def test_known_reducible(self):
        assert not poly_is_irreducible(poly_mul(0b111, 0b11))
        assert not poly_is_irreducible(0b101)  # (x+1)^2

    def test_irreducible_but_not_primitive(self):
        # x^4+x^3+x^2+x+1 divides x^5-1: order 5, not 15
        p = 0b11111
        assert poly_is_irreducible(p)
        assert not poly_is_primitive(p)

    def test_primitive_examples(self):
        assert poly_is_primitive(0b10011)
        assert not poly_is_primitive(0b11111)

    def test_taps_roundtrip(self):
        p = poly_from_taps(8, (0, 2, 3, 4))
        assert taps_from_poly(p) == (8, (0, 2, 3, 4))

    def test_bad_tap(self):
        with pytest.raises(SpecificationError):
            poly_from_taps(4, (4,))


class TestFactorize:
    @pytest.mark.parametrize(
        "n,expected",
        [(12, (2, 3)), (97, (97,)), (2**16 - 1, (3, 5, 17, 257)), (2**23 - 1, (47, 178481))],
    )
    def test_known(self, n, expected):
        assert factorize(n) == expected


class TestBerlekampMassey:
    def test_constant_zero(self):
        assert berlekamp_massey(np.zeros(32, dtype=np.uint8)) == 0

    def test_single_one(self):
        # sequence 0001 has complexity 4 (needs a length-4 register)
        assert berlekamp_massey([0, 0, 0, 1]) == 4

    def test_alternating(self):
        assert berlekamp_massey([1, 0, 1, 0, 1, 0, 1, 0]) == 2

    @pytest.mark.parametrize("n", [5, 9, 14])
    def test_lfsr_complexity_is_degree(self, n):
        seq = ReferenceLFSR(n, state=3).run(4 * n)
        assert berlekamp_massey(seq) == n

    def test_random_sequence_near_half(self, rng):
        seq = rng.integers(0, 2, size=200, dtype=np.uint8)
        l = berlekamp_massey(seq)
        assert 90 <= l <= 110

    def test_profile_monotone(self, rng):
        seq = rng.integers(0, 2, size=64, dtype=np.uint8)
        prof = linear_complexity_profile(seq)
        assert np.all(np.diff(prof) >= 0)
        assert prof[-1] == berlekamp_massey(seq)


class TestPeriodTheory:
    @pytest.mark.parametrize("n,taps", [(4, (0, 1)), (10, (0, 3)), (16, (0, 4, 13, 15))])
    def test_primitive_period(self, n, taps):
        assert lfsr_period(n, taps) == (1 << n) - 1

    def test_non_primitive_period(self):
        # x^4+x^3+x^2+x+1: irreducible of order 5
        assert lfsr_period(4, (0, 1, 2, 3)) == 5

    def test_reducible_rejected(self):
        with pytest.raises(SpecificationError):
            lfsr_period(4, (0, 2))  # x^4+x^2+1 = (x^2+x+1)^2

    def test_period_matches_walk(self):
        n, taps = 11, (0, 2)
        assert lfsr_period(n, taps) == ReferenceLFSR(n, taps, state=1).period(1 << n)


class TestRank:
    def test_identity_full_rank(self):
        assert gf2_matrix_rank(np.eye(16, dtype=np.uint8)) == 16

    def test_duplicate_rows(self):
        m = np.ones((4, 4), dtype=np.uint8)
        assert gf2_matrix_rank(m) == 1

    def test_zero(self):
        assert gf2_matrix_rank(np.zeros((8, 8), dtype=np.uint8)) == 0

    def test_rectangular(self):
        m = np.array([[1, 0, 0, 0, 0], [0, 1, 0, 0, 0]], dtype=np.uint8)
        assert gf2_matrix_rank(m) == 2

    def test_batch_matches_single(self, rng):
        mats = rng.integers(0, 2, size=(30, 16, 16), dtype=np.uint8)
        batch = gf2_matrix_rank_batch(mats)
        singles = np.array([gf2_matrix_rank(m) for m in mats])
        assert np.array_equal(batch, singles)

    def test_batch_width_cap(self):
        with pytest.raises(SpecificationError):
            gf2_matrix_rank_batch(np.zeros((1, 4, 65), dtype=np.uint8))

    def test_pack_rows_width(self):
        packed = pack_rows(np.ones((3, 70), dtype=np.uint8))
        assert packed.shape == (3, 2)

    def test_rank_distribution_sums_to_one(self):
        probs = rank_distribution(32, 32)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.2888, abs=1e-4)
        assert probs[1] == pytest.approx(0.5776, abs=1e-4)
