"""Bit-level circuit IR, synthesis and code emission (paper §4.4).

The paper generates its unrolled CUDA bit-level kernels from "a
higher-level transcript (i.e., written in Python language)" because
hand-writing thousands of gate lines "increase[s] the error rate".  This
package is that transcript machinery:

``circuit``
    A tiny gate-level IR (:class:`Circuit`, :class:`CircuitBuilder`) with
    hash-consing, NumPy evaluation and gate accounting.
``anf``
    Truth-table → algebraic-normal-form synthesis (Möbius transform) and
    shared-monomial circuit construction — how the bitsliced AES S-box is
    produced from the byte table.
``emit``
    Source emitters: vectorized NumPy kernels and CUDA-C translation
    units, both generated from the same IR.
"""

from repro.codegen.anf import anf_from_truth_table, circuit_from_truth_tables
from repro.codegen.circuit import Circuit, CircuitBuilder, Node
from repro.codegen.emit import emit_cuda, emit_cuda_epilogue, emit_numpy

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Node",
    "anf_from_truth_table",
    "circuit_from_truth_tables",
    "emit_numpy",
    "emit_cuda",
    "emit_cuda_epilogue",
]
