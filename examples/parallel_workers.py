#!/usr/bin/env python
"""Independent streams for parallel workers (SPRNG-style spawning).

Monte Carlo across worker processes needs per-worker generators that are
(a) independent — no shared or overlapping streams — and (b) reproducible
from one master seed.  ``BSRNG.spawn`` derives both through SplitMix64
stream separation; this example estimates an integral with 4 workers and
shows the result is identical across runs and free of cross-worker
correlation.

Run:  python examples/parallel_workers.py
"""

import math
import multiprocessing as mp

import numpy as np

from repro import BSRNG
from repro.analysis import lane_correlation_matrix, max_abs_offdiag

MASTER_SEED = 0x1234
N_WORKERS = 4
SAMPLES_PER_WORKER = 250_000


def worker_estimate(args) -> float:
    """One worker's contribution to E[exp(-x^2)] over [0, 1]."""
    worker_id, seed = args
    rng = BSRNG("trivium", seed=seed, lanes=2048)
    x = rng.random(SAMPLES_PER_WORKER)
    return float(np.exp(-(x**2)).mean())


def main() -> None:
    parent = BSRNG("trivium", seed=MASTER_SEED, lanes=2048)
    children = parent.spawn(N_WORKERS)
    jobs = [(i, c.seed) for i, c in enumerate(children)]

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(N_WORKERS) as pool:
        partials = pool.map(worker_estimate, jobs)

    estimate = float(np.mean(partials))
    # closed form: integral of exp(-x^2) over [0,1] = sqrt(pi)/2 * erf(1)
    truth = math.sqrt(math.pi) / 2 * math.erf(1.0)
    print(f"workers           : {N_WORKERS} x {SAMPLES_PER_WORKER:,} samples")
    print(f"per-worker partial: {[round(p, 6) for p in partials]}")
    print(f"estimate          : {estimate:.6f}")
    print(f"closed form       : {truth:.6f}   (|err| = {abs(estimate - truth):.6f})")

    # reproducibility: respawning from the master seed gives the same jobs
    again = [(i, c.seed) for i, c in enumerate(BSRNG("trivium", seed=MASTER_SEED, lanes=2048).spawn(N_WORKERS))]
    assert again == jobs
    print("respawn from master seed reproduces the same worker streams  [OK]")

    # independence: cross-worker bit streams are uncorrelated
    streams = np.stack([c.random_bits(20_000) for c in children])
    worst = max_abs_offdiag(lane_correlation_matrix(streams))
    print(f"max cross-worker correlation: {worst:.4f}  (noise floor ~{3/np.sqrt(20_000):.4f})")
    assert worst < 0.05


if __name__ == "__main__":
    main()
