"""LFSR sequence theory: linear complexity and period.

Berlekamp–Massey is doubly load-bearing here: it verifies that our LFSRs
produce sequences of exactly the expected linear complexity, and it is
the statistic of NIST SP 800-22 test #10 (Linear Complexity), so it must
be fast — the inner update is vectorized over the connection polynomial.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.errors import SpecificationError
from repro.gf2.poly import poly_from_taps, poly_is_primitive, poly_powmod

__all__ = ["berlekamp_massey", "linear_complexity_profile", "lfsr_period"]


def berlekamp_massey(bits) -> int:
    """Linear complexity L of a bit sequence (length of the shortest LFSR
    that generates it)."""
    s = as_bit_array(bits)
    n = s.size
    if n == 0:
        return 0
    # Connection polynomials as fixed-size bit arrays (index = coefficient).
    c = np.zeros(n + 1, dtype=np.uint8)
    b = np.zeros(n + 1, dtype=np.uint8)
    c[0] = b[0] = 1
    L, m = 0, -1
    for i in range(n):
        # discrepancy d = s_i + sum_{j=1..L} c_j s_{i-j}; L <= i always
        # holds here, so the reversed window has exactly L elements.
        d = int(s[i])
        if L:
            d ^= int((c[1 : L + 1] & s[i - L : i][::-1]).sum() & 1)
        if d:
            t = c.copy()
            shift = i - m
            c[shift : n + 1] ^= b[: n + 1 - shift]
            if 2 * L <= i:
                L = i + 1 - L
                m = i
                b = t
    return L


def linear_complexity_profile(bits) -> np.ndarray:
    """L_i after each prefix of the sequence (the LC profile).

    A good PRNG's profile hugs the ``i/2`` line; used by the analysis
    module and as a property-test oracle.
    """
    s = as_bit_array(bits)
    n = s.size
    c = np.zeros(n + 1, dtype=np.uint8)
    b = np.zeros(n + 1, dtype=np.uint8)
    c[0] = b[0] = 1
    L, m = 0, -1
    profile = np.empty(n, dtype=np.int64)
    for i in range(n):
        d = int(s[i])
        if L:
            d ^= int((c[1 : L + 1] & s[i - L : i][::-1]).sum() & 1)
        if d:
            t = c.copy()
            shift = i - m
            c[shift : n + 1] ^= b[: n + 1 - shift]
            if 2 * L <= i:
                L = i + 1 - L
                m = i
                b = t
        profile[i] = L
    return profile


def lfsr_period(n: int, taps) -> int:
    """Exact period of the LFSR ``x^n + sum(x^i, i in taps)`` from any
    non-zero state, computed algebraically (order of x mod p).

    For a primitive polynomial this is ``2^n - 1`` without walking the
    state space; otherwise the multiplicative order is found by dividing
    out prime factors.
    """
    from repro.gf2.poly import factorize

    p = poly_from_taps(n, taps)
    if poly_is_primitive(p):
        return (1 << n) - 1
    order = (1 << n) - 1
    if poly_powmod(2, order, p) != 1:
        raise SpecificationError(
            "polynomial is not irreducible; the LFSR has state-dependent periods"
        )
    for q in factorize(order):
        while order % q == 0 and poly_powmod(2, order // q, p) == 1:
            order //= q
    return order
