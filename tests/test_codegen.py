"""Codegen tests: circuit IR, ANF synthesis and the source emitters
(the paper's §4.4 automation methodology)."""

import itertools

import numpy as np
import pytest

from repro.codegen import (
    Circuit,
    CircuitBuilder,
    anf_from_truth_table,
    circuit_from_truth_tables,
    emit_cuda,
    emit_cuda_epilogue,
    emit_numpy,
)
from repro.codegen.anf import sbox_truth_tables
from repro.errors import SpecificationError


def eval_scalar(circuit, **bits):
    return circuit.evaluate_bits(bits)


class TestCircuitBuilder:
    def test_constant_folding_xor(self):
        b = CircuitBuilder()
        x = b.input("x")
        assert b.xor(x, b.zero) is x
        assert b.xor(x, x) is b.zero
        assert b.xor(b.one, b.one) is b.zero

    def test_constant_folding_and_or(self):
        b = CircuitBuilder()
        x = b.input("x")
        assert b.and_(x, b.one) is x
        assert b.and_(x, b.zero) is b.zero
        assert b.or_(x, b.zero) is x
        assert b.or_(x, b.one) is b.one
        assert b.and_(x, x) is x

    def test_double_negation_cancels(self):
        b = CircuitBuilder()
        x = b.input("x")
        assert b.not_(b.not_(x)) is x

    def test_cse_commutative(self):
        b = CircuitBuilder()
        x, y = b.inputs(["x", "y"])
        assert b.xor(x, y) is b.xor(y, x)
        assert b.and_(x, y) is b.and_(y, x)

    def test_mux_semantics(self):
        b = CircuitBuilder()
        s, x, y = b.inputs(["s", "x", "y"])
        b.output("z", b.mux(s, x, y))
        c = b.build()
        for sv, xv, yv in itertools.product((0, 1), repeat=3):
            got = eval_scalar(c, s=sv, x=xv, y=yv)["z"]
            assert got == (xv if sv else yv)

    def test_duplicate_output_rejected(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.output("z", x)
        with pytest.raises(SpecificationError):
            b.output("z", x)

    def test_no_outputs_rejected(self):
        with pytest.raises(SpecificationError):
            CircuitBuilder().build()

    def test_xor_many_parity(self):
        b = CircuitBuilder()
        xs = b.inputs([f"x{i}" for i in range(5)])
        b.output("p", b.xor_many(xs))
        c = b.build()
        for vals in itertools.product((0, 1), repeat=5):
            bits = {f"x{i}": v for i, v in enumerate(vals)}
            assert eval_scalar(c, **bits)["p"] == sum(vals) % 2


class TestCircuit:
    def test_dead_code_elimination(self):
        b = CircuitBuilder()
        x, y = b.inputs(["x", "y"])
        _dead = b.and_(x, y)  # never used by an output
        b.output("z", b.xor(x, y))
        c = b.build()
        assert c.gate_counts()["and"] == 0
        assert c.gate_counts()["xor"] == 1

    def test_depth(self):
        b = CircuitBuilder()
        x, y, z = b.inputs(["x", "y", "z"])
        b.output("o", b.and_(b.xor(x, y), z))
        assert b.build().depth() == 2

    def test_vectorized_evaluation(self):
        b = CircuitBuilder()
        x, y = b.inputs(["x", "y"])
        b.output("x_and_y", b.and_(x, y))
        b.output("x_or_ny", b.or_(x, b.not_(y)))
        c = b.build()
        rng = np.random.default_rng(0)
        xa = rng.integers(0, 1 << 32, 16, dtype=np.uint64)
        ya = rng.integers(0, 1 << 32, 16, dtype=np.uint64)
        out = c.evaluate({"x": xa, "y": ya})
        assert np.array_equal(out["x_and_y"], xa & ya)
        assert np.array_equal(out["x_or_ny"], xa | ~ya)

    def test_missing_input_rejected(self):
        b = CircuitBuilder()
        x, y = b.inputs(["x", "y"])
        b.output("z", b.xor(x, y))
        with pytest.raises(SpecificationError):
            b.build().evaluate({"x": np.zeros(1, np.uint64)})

    def test_compile_matches_interpreted(self):
        b = CircuitBuilder()
        xs = b.inputs(["a", "b", "c"])
        b.output("maj", b.or_(b.and_(xs[0], xs[1]), b.and_(xs[2], b.xor(xs[0], xs[1]))))
        c = b.build()
        fn = c.compile()
        rng = np.random.default_rng(1)
        ins = {n: rng.integers(0, 1 << 63, 8, dtype=np.uint64) for n in "abc"}
        assert np.array_equal(fn(**ins)["maj"], c.evaluate(ins)["maj"])


class TestANF:
    def test_xor_function(self):
        # f(x0, x1) = x0 ^ x1: ANF has exactly monomials {x0}, {x1}.
        table = [0, 1, 1, 0]
        anf = anf_from_truth_table(table)
        assert list(anf) == [0, 1, 1, 0]

    def test_and_function(self):
        # f = x0 & x1: single monomial x0x1 (mask 0b11).
        assert list(anf_from_truth_table([0, 0, 0, 1])) == [0, 0, 0, 1]

    def test_constant_one(self):
        assert list(anf_from_truth_table([1, 1, 1, 1])) == [1, 0, 0, 0]

    def test_moebius_is_involution(self):
        rng = np.random.default_rng(2)
        table = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(anf_from_truth_table(anf_from_truth_table(table)), table)

    def test_rejects_bad_length(self):
        with pytest.raises(SpecificationError):
            anf_from_truth_table([0, 1, 1])

    def test_rejects_non_binary(self):
        with pytest.raises(SpecificationError):
            anf_from_truth_table([0, 2, 0, 0])

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_synthesis_reproduces_random_functions(self, n):
        rng = np.random.default_rng(n)
        tables = [rng.integers(0, 2, 1 << n, dtype=np.uint8) for _ in range(3)]
        c = circuit_from_truth_tables(tables)
        for p in range(1 << n):
            bits = {f"x{i}": (p >> i) & 1 for i in range(n)}
            out = c.evaluate_bits(bits)
            for j, t in enumerate(tables):
                assert out[f"y{j}"] == int(t[p]), (n, p, j)

    def test_monomial_sharing_across_outputs(self):
        # Two outputs sharing monomial x0x1x2: the AND chain is built once.
        t_shared = np.zeros(8, np.uint8)
        t_shared[7] = 1  # x0x1x2
        c2 = circuit_from_truth_tables([t_shared, t_shared ^ 1])
        # x0x1x2 needs 2 ANDs; output 2 adds a NOT — no duplicate ANDs.
        assert c2.gate_counts()["and"] == 2

    def test_name_validation(self):
        with pytest.raises(SpecificationError):
            circuit_from_truth_tables([[0, 1]], input_names=["a", "b"])

    def test_sbox_truth_tables_roundtrip(self):
        from repro.ciphers.aes import _build_sbox

        sbox, _ = _build_sbox()
        tables = sbox_truth_tables(sbox)
        assert len(tables) == 8
        recon = sum((t.astype(int) << i) for i, t in enumerate(tables))
        assert np.array_equal(recon, sbox)

    def test_aes_sbox_circuit_correct(self):
        from repro.ciphers.aes import _build_sbox

        sbox, _ = _build_sbox()
        c = circuit_from_truth_tables(sbox_truth_tables(sbox))
        # vectorized check over all 256 inputs at once
        inputs = {f"x{i}": ((np.arange(256) >> i) & 1).astype(np.uint64) * np.uint64(0xFFFFFFFFFFFFFFFF) for i in range(8)}
        out = c.evaluate(inputs)
        got = sum(((out[f"y{j}"] & 1).astype(int) << j) for j in range(8))
        assert np.array_equal(got, sbox)


class TestEmitters:
    @pytest.fixture()
    def sample_circuit(self):
        b = CircuitBuilder()
        x, y, z = b.inputs(["x", "y", "z"])
        b.output("s", b.xor(b.xor(x, y), z))
        b.output("c", b.or_(b.and_(x, y), b.and_(z, b.xor(x, y))))
        return b.build()

    def test_numpy_emitter_executes(self, sample_circuit):
        src = emit_numpy(sample_circuit, func_name="adder")
        ns = {"np": np}
        exec(src, ns)
        rng = np.random.default_rng(3)
        ins = {n: rng.integers(0, 1 << 32, 4, dtype=np.uint64) for n in "xyz"}
        got = ns["adder"](**ins)
        ref = sample_circuit.evaluate(ins)
        assert np.array_equal(got["s"], ref["s"])
        assert np.array_equal(got["c"], ref["c"])

    def test_numpy_emitter_is_flat(self, sample_circuit):
        src = emit_numpy(sample_circuit)
        assert "for " not in src and "while " not in src

    def test_cuda_emitter_structure(self, sample_circuit):
        src = emit_cuda(sample_circuit, func_name="full_adder")
        assert "__device__" in src
        assert "void full_adder(" in src
        assert "const uint32_t x" in src
        assert "uint32_t *out_s" in src and "uint32_t *out_c" in src
        assert src.count("{") == src.count("}")
        assert "*out_s = " in src

    def test_cuda_emitter_word_type(self, sample_circuit):
        src = emit_cuda(sample_circuit, word_type="uint64_t")
        assert "uint32_t" not in src

    def test_cuda_constants_only_when_used(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.output("y", b.not_(x))
        src = emit_cuda(b.build())
        assert "_ones" not in src and "_zeros" not in src


class TestCudaEpilogue:
    def test_structure(self):
        src = emit_cuda_epilogue(func_name="receipt")
        assert "__device__" in src
        assert "void receipt_word(" in src
        assert "void receipt_store(" in src
        assert "__popc(" in src and "__popcll" not in src
        assert "RECEIPT_CRC32_POLY 0x04C11DB7u" in src
        assert src.count("{") == src.count("}")

    def test_word64_uses_popcll(self):
        src = emit_cuda_epilogue(word_type="uint64_t")
        assert "__popcll(" in src
        assert "b < 8" in src  # eight byte folds per 64-bit word

    def test_rejects_unknown_word_type(self):
        with pytest.raises(ValueError, match="word_type"):
            emit_cuda_epilogue(word_type="float")

    @pytest.mark.parametrize("word_type", ["uint32_t", "uint64_t"])
    def test_fold_matches_streamtouch_bit_for_bit(self, word_type):
        """Simulate the emitted algorithm (MSB-first CRC, init
        0xFFFFFFFF, no xorout, LSB-first bytes per word) and check it
        reproduces the host single-touch receipt exactly."""
        from repro.core.touch import StreamTouch

        word_bytes = 4 if word_type == "uint32_t" else 8
        rng = np.random.default_rng(7)
        dtype = np.uint32 if word_bytes == 4 else np.uint64
        words = rng.integers(0, 1 << 32, 33, dtype=np.uint64).astype(dtype)
        crc, ones = 0xFFFFFFFF, 0
        for w in words.tolist():  # the emitted device loop, in Python
            ones += bin(w).count("1")
            for b in range(word_bytes):
                crc ^= ((w >> (8 * b)) & 0xFF) << 24
                for _ in range(8):
                    crc = ((crc << 1) & 0xFFFFFFFF) ^ (
                        0x04C11DB7 if crc & 0x80000000 else 0
                    )
        touch = StreamTouch()
        touch.update(words)  # little-endian memory-order bytes
        assert crc == touch.crc
        assert ones == touch.ones


class TestMickeyCircuit:
    def test_generated_circuit_matches_reference(self):
        """The generated one-clock netlist must match the bit-serial
        reference cipher for random states (paper §4.4: the generated
        kernel replaces hand-written code)."""
        from repro.ciphers.mickey import Mickey2
        from repro.ciphers.mickey_circuit import mickey_clock_circuit

        circuit = mickey_clock_circuit(mixing=False)
        rng = np.random.default_rng(4)
        key = rng.integers(0, 2, 80, dtype=np.uint8)
        ref = Mickey2(key, iv=rng.integers(0, 2, 40, dtype=np.uint8))
        r0, s0 = ref.state()
        out_ref = ref.next_bit()
        r1, s1 = ref.state()

        inputs = {f"r{i}": np.uint64(0xFFFFFFFFFFFFFFFF) * np.uint64(r0[i]) for i in range(100)}
        inputs.update({f"s{i}": np.uint64(0xFFFFFFFFFFFFFFFF) * np.uint64(s0[i]) for i in range(100)})
        inputs["input_bit"] = np.uint64(0)
        out = circuit.evaluate({k: np.array([v], dtype=np.uint64) for k, v in inputs.items()})
        got_bit = int(out["z"][0] & np.uint64(1))
        assert got_bit == out_ref
        for i in range(100):
            assert int(out[f"nr{i}"][0] & np.uint64(1)) == r1[i], f"R{i}"
            assert int(out[f"ns{i}"][0] & np.uint64(1)) == s1[i], f"S{i}"

    def test_cuda_source_wellformed(self):
        from repro.ciphers.mickey_circuit import mickey_cuda_source

        src = mickey_cuda_source()
        assert "__device__" in src
        assert src.count("{") == src.count("}")
        assert "*out_z = " in src
        assert "*out_nr99 = " in src and "*out_ns99 = " in src

    def test_gate_count_stability(self):
        """The measured kernel cost feeding the GPU model must stay in the
        regime the analysis assumes (hundreds of gates per clock)."""
        from repro.ciphers.mickey_circuit import mickey_clock_circuit

        counts = mickey_clock_circuit(mixing=False).gate_counts()
        assert 300 <= counts["total"] <= 1500
