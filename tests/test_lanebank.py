"""Thread-parallel lane banks: bit-identity, seeking, and plumbing.

The contract under test (``repro.core.lanebank``): splitting a bank's
word columns across a thread pool must be invisible in the emitted
stream.  Every test compares against the single-bank paths that the
differential conformance layer already pins down, so a threaded
divergence cannot hide behind a matching-but-wrong reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ciphers.aes_bitsliced import BitslicedAESCTR
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.trivium_bitsliced import BitslicedTrivium
from repro.core.generator import BSRNG
from repro.core.lanebank import ThreadedLaneBank, split_word_columns
from repro.errors import SpecificationError

BITSLICED = ["trivium", "grain", "mickey2", "aes128ctr"]
BANKS = {
    "trivium": BitslicedTrivium,
    "grain": BitslicedGrain,
    "mickey2": BitslicedMickey2,
    "aes128ctr": BitslicedAESCTR,
}


# -- column splitting ---------------------------------------------------------


def test_split_word_columns_covers_and_balances():
    for n_words in (1, 2, 3, 7, 16, 64):
        for threads in range(1, n_words + 1):
            ranges = split_word_columns(n_words, threads)
            assert len(ranges) == threads
            assert ranges[0][0] == 0 and ranges[-1][1] == n_words
            widths = []
            for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                assert a1 == b0, "ranges must tile contiguously"
            for w0, w1 in ranges:
                assert w1 > w0, "every thread must own at least one word"
                widths.append(w1 - w0)
            assert max(widths) - min(widths) <= 1, "split must be balanced"


def test_split_word_columns_rejects_bad_shapes():
    with pytest.raises(SpecificationError):
        split_word_columns(0, 1)
    with pytest.raises(SpecificationError):
        split_word_columns(4, 0)
    with pytest.raises(SpecificationError):
        split_word_columns(2, 3)


# -- bit-identity against the single-bank paths -------------------------------


@pytest.mark.parametrize("algorithm", BITSLICED)
@pytest.mark.parametrize("threads", [2, 3])
def test_threaded_stream_bit_identical(algorithm, threads):
    """threads=N matches both the fused and interpreter single-bank streams."""
    n = 16384
    ref = BSRNG(algorithm, seed=7, lanes=256, prefetch=False).read(n)
    interp = BSRNG(algorithm, seed=7, lanes=256, prefetch=False, fused=False).read(n)
    assert ref == interp  # the existing conformance anchor
    threaded = BSRNG(algorithm, seed=7, lanes=256, prefetch=False, threads=threads).read(n)
    assert threaded == ref
    threaded_interp = BSRNG(
        algorithm, seed=7, lanes=256, prefetch=False, fused=False, threads=threads
    ).read(n)
    assert threaded_interp == ref


@pytest.mark.parametrize("algorithm", ["trivium", "aes128ctr"])
def test_threaded_padding_lanes_match(algorithm):
    """A non-word-multiple lane count leaves padding bits in the last word.

    The sub-bank owning that word must reproduce the exact same padding
    (real lanes seeded, tail lanes zero), or the flattened byte stream
    shifts.  130 lanes / 3 words puts 2 real lanes in the final word.
    """
    n = 8192
    ref = BSRNG(algorithm, seed=11, lanes=130, prefetch=False).read(n)
    threaded = BSRNG(algorithm, seed=11, lanes=130, prefetch=False, threads=3).read(n)
    assert threaded == ref


@pytest.mark.parametrize("algorithm", BITSLICED)
def test_threaded_skip_bytes_matches_unskipped(algorithm):
    """Seeks route through the threaded bank (native for CTR, drain else)."""
    skip, n = 12345, 4096
    ref = BSRNG(algorithm, seed=3, lanes=128, prefetch=False).read(skip + n)[skip:]
    rng = BSRNG(algorithm, seed=3, lanes=128, prefetch=False, threads=2)
    rng.skip_bytes(skip)
    assert rng.read(n) == ref
    assert rng.tell() == skip + n


def test_threaded_resume_across_reads():
    """Split reads concatenate to the same stream as one big read."""
    rng = BSRNG("trivium", seed=5, lanes=192, prefetch=False, threads=2)
    got = b"".join(rng.read(k) for k in (1, 63, 64, 1000, 4096))
    ref = BSRNG("trivium", seed=5, lanes=192, prefetch=False).read(len(got))
    assert got == ref


# -- direct bank API ----------------------------------------------------------


def test_lanebank_threads_clamped_to_words():
    bank = ThreadedLaneBank(BitslicedTrivium, 1, lanes=64, threads=8)
    assert bank.threads == 1  # 64 lanes = 1 word: nothing to split
    assert bank.ranges == [(0, 1)]


def test_lanebank_keystream_bits_matches_single_bank():
    from repro.core.engine import BitslicedEngine

    single = BitslicedTrivium(BitslicedEngine(n_lanes=128, fused=True)).seed(9)
    threaded = ThreadedLaneBank(BitslicedTrivium, 9, lanes=128, threads=2)
    np.testing.assert_array_equal(threaded.keystream_bits(512), single.keystream_bits(512))


def test_lanebank_gate_report_merges_sub_banks():
    bank = ThreadedLaneBank(BitslicedTrivium, 1, lanes=128, threads=2)
    bank.next_planes(64)
    report = bank.gate_report()
    assert report["n_lanes"] == 128
    assert report["total"] > 0
    # each sub-bank issues its own instruction stream over its columns
    assert report["xor"] == sum(b.engine.counter.xor for b in bank.banks)
    assert bank.gates_per_output_bit() > 0


def test_lanebank_rejects_nonpositive_threads():
    with pytest.raises(SpecificationError):
        ThreadedLaneBank(BitslicedTrivium, 1, lanes=128, threads=0)


# -- generator plumbing -------------------------------------------------------


def test_baseline_algorithms_reject_threads():
    with pytest.raises(SpecificationError):
        BSRNG("philox", seed=1, threads=2)


def test_bsrng_rejects_nonpositive_threads():
    with pytest.raises(SpecificationError):
        BSRNG("trivium", seed=1, threads=0)


def test_reseed_and_spawn_preserve_threads():
    rng = BSRNG("trivium", seed=21, lanes=128, prefetch=False, threads=2)
    rng.read(100)
    rng.reseed(22)
    assert rng.threads == 2
    assert rng.read(1000) == BSRNG("trivium", seed=22, lanes=128, prefetch=False).read(1000)
    child = rng.spawn(1)[0]
    assert child.threads == 2
