"""GPU substitution-layer tests: specs, occupancy, memory models,
kernel profiles, roofline and the anchored throughput model."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.gpu.kernels import kernel_profiles
from repro.gpu.launch import LaunchConfig, occupancy
from repro.gpu.memory import coalescing_efficiency, effective_write_bw, staging_efficiency
from repro.gpu.model import (
    DERIVED_ANCHORS,
    PAPER_ANCHORS,
    ThroughputModel,
    anchored_throughput_gbps,
    roofline_gbps,
)
from repro.gpu.priorwork import PRIOR_WORK
from repro.gpu.specs import GPU_CATALOGUE, LEGACY_GPUS, TABLE2_GPUS, get_gpu


class TestSpecs:
    def test_table2_complete(self):
        # Exactly the six platforms of the paper's Table 2.
        assert set(TABLE2_GPUS) == {
            "GTX 480",
            "GTX 980 Ti",
            "GTX 1050 Ti",
            "GTX 1080 Ti",
            "Tesla V100",
            "GTX 2080 Ti",
        }

    def test_table2_values_match_paper(self):
        v100 = get_gpu("Tesla V100")
        assert v100.sp_gflops == 14028.0
        assert v100.dp_gflops == 7014.0
        assert v100.mem_bw_gbs == 900.0
        t2080 = get_gpu("GTX 2080 Ti")
        assert (t2080.sp_gflops, t2080.dp_gflops, t2080.mem_bw_gbs) == (11750.0, 367.0, 616.0)

    def test_catalogue_includes_legacy(self):
        for name in LEGACY_GPUS:
            assert name in GPU_CATALOGUE

    def test_unknown_gpu_raises(self):
        with pytest.raises(ModelError):
            get_gpu("GTX 9999")

    def test_logic_rate_is_half_fma_rating(self):
        g = get_gpu("GTX 480")
        assert g.logic_ops_per_s == pytest.approx(g.sp_gflops * 1e9 / 2)


class TestLaunchConfig:
    def test_paper_defaults(self):
        cfg = LaunchConfig()
        assert cfg.blocks == 64 and cfg.threads_per_block == 256

    def test_lanes_and_bits(self):
        cfg = LaunchConfig(blocks=2, threads_per_block=128, loop_size=1000)
        assert cfg.total_threads == 256
        assert cfg.lanes(32) == 256 * 32
        assert cfg.bits_per_launch(32) == 256 * 32 * 1000

    def test_validation(self):
        with pytest.raises(ModelError):
            LaunchConfig(blocks=0)
        with pytest.raises(ModelError):
            LaunchConfig(threads_per_block=2048)
        with pytest.raises(ModelError):
            LaunchConfig(loop_size=0)


class TestOccupancy:
    def test_low_pressure_is_full(self):
        gpu = get_gpu("Tesla V100")
        assert occupancy(gpu, registers_per_thread=16) == 1.0

    def test_monotone_in_register_pressure(self):
        gpu = get_gpu("GTX 2080 Ti")
        occs = [occupancy(gpu, r) for r in (16, 64, 128, 210, 255)]
        assert all(a >= b for a, b in zip(occs, occs[1:]))

    def test_never_zero(self):
        gpu = get_gpu("GTX 480")
        assert occupancy(gpu, registers_per_thread=255) > 0.0

    def test_whole_block_granularity(self):
        gpu = get_gpu("GTX 2080 Ti")
        # 65536 regs / 128 regs = 512 threads = exactly 2 blocks of 256.
        assert occupancy(gpu, 128, 256) == pytest.approx(512 / gpu.max_threads_per_sm)

    def test_pre_cuda_gpu_unconstrained(self):
        assert occupancy(get_gpu("7800 GTX"), 255) == 1.0

    def test_invalid_registers(self):
        with pytest.raises(ModelError):
            occupancy(get_gpu("Tesla V100"), 0)


class TestMemoryModels:
    def test_staging_monotone_and_bounded(self):
        vals = [staging_efficiency(s) for s in (256, 1024, 8192, 65536)]
        assert all(0 < v < 1 for v in vals)
        assert vals == sorted(vals)

    def test_staging_plateau(self):
        # The curve must be steep early and flat late (paper: gains up to
        # "a suitable size", then nothing).
        early = staging_efficiency(2048) - staging_efficiency(256)
        late = staging_efficiency(131072) - staging_efficiency(65536)
        assert early > 10 * late

    def test_staging_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            staging_efficiency(0)

    def test_coalescing_stride_one_perfect(self):
        assert coalescing_efficiency(1) == 1.0

    def test_coalescing_degrades_with_stride(self):
        effs = [coalescing_efficiency(s) for s in (1, 2, 4, 8, 32, 64)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert coalescing_efficiency(32) == pytest.approx(4 / 128)

    def test_effective_bw_below_peak(self):
        assert effective_write_bw(900.0) < 900.0
        assert effective_write_bw(900.0) > 0.0

    def test_effective_bw_scales_with_peak(self):
        assert effective_write_bw(900.0) == pytest.approx(2 * effective_write_bw(450.0))


class TestKernelProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        return kernel_profiles()

    def test_all_kernels_present(self, profiles):
        assert {"mickey2", "grain", "aes128ctr", "curand-mt", "curand-xorwow", "curand-philox"} <= set(profiles)

    def test_bitsliced_flags(self, profiles):
        assert profiles["mickey2"].bitsliced
        assert profiles["grain"].bitsliced
        assert not profiles["curand-mt"].bitsliced

    def test_gate_counts_measured_positive(self, profiles):
        for p in profiles.values():
            assert p.gates_per_bit > 0

    def test_stream_ciphers_cheaper_than_aes(self, profiles):
        # Paper §5.2: "the peak AES performance is limited compared to the
        # stream ciphers... mainly caused by the complex bitsliced S-box".
        assert profiles["grain"].bits_per_instruction > profiles["aes128ctr"].bits_per_instruction

    def test_mickey_register_count_from_paper(self, profiles):
        # "200 registers, each containing 32 bits" + temporaries.
        assert profiles["mickey2"].registers_per_thread >= 200


class TestRoofline:
    def test_positive_for_all_pairs(self):
        for kernel in kernel_profiles():
            for gpu in TABLE2_GPUS:
                assert roofline_gbps(kernel, gpu) > 0

    def test_scales_with_gpu_power(self):
        # A bigger GPU can only help a compute-bound kernel.
        small = roofline_gbps("mickey2", "GTX 1050 Ti")
        big = roofline_gbps("mickey2", "Tesla V100")
        assert big > small

    def test_accepts_objects(self):
        prof = kernel_profiles()["grain"]
        gpu = get_gpu("GTX 980 Ti")
        assert roofline_gbps(prof, gpu) == roofline_gbps("grain", "GTX 980 Ti")


class TestAnchoredModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ThroughputModel()

    def test_reproduces_primary_anchor(self, model):
        # The calibration must return the paper's headline number exactly
        # on its anchor point: MICKEY = 2.72 Tb/s on the GTX 2080 Ti.
        assert model.predict_gbps("mickey2", "GTX 2080 Ti") == pytest.approx(2720.0)

    def test_curand_anchor(self, model):
        # "40% improvement over ... cuRAND" on the same device.
        ratio = model.predict_gbps("mickey2", "GTX 2080 Ti") / model.predict_gbps(
            "curand-mt", "GTX 2080 Ti"
        )
        assert ratio == pytest.approx(1.4, rel=0.01)

    def test_figure10_ordering(self, model):
        # Paper Fig. 10 shape: MICKEY > Grain > cuRAND > AES at the top end.
        series = model.figure10_series()
        for gpu in ("GTX 2080 Ti", "Tesla V100"):
            assert series["mickey2"][gpu] > series["grain"][gpu]
            assert series["grain"][gpu] > series["aes128ctr"][gpu]
            assert series["mickey2"][gpu] > series["curand-mt"][gpu]

    def test_v100_close_to_paper(self, model):
        # 2.90 Tb/s claimed on the V100; the model is calibrated on the
        # 2080 Ti, so V100 is a *prediction* — requires the right shape.
        v100 = model.predict_gbps("mickey2", "Tesla V100")
        assert 2000.0 < v100 < 4500.0

    def test_unknown_kernel_raises(self, model):
        with pytest.raises(ModelError):
            model.predict_gbps("rc4", "Tesla V100")

    def test_calibration_report_exposes_scales(self, model):
        rep = model.calibration_report()
        assert "mickey2" in rep and rep["mickey2"] > 0

    def test_convenience_wrapper(self):
        assert anchored_throughput_gbps("mickey2", "GTX 2080 Ti") == pytest.approx(2720.0)

    def test_anchor_tables_disjoint_keys(self):
        assert not set(PAPER_ANCHORS) & set(DERIVED_ANCHORS)


class TestPriorWork:
    def test_six_rows(self):
        assert len(PRIOR_WORK) == 6

    def test_normalization_matches_paper_column(self):
        # The paper's printed Gbps/GFLOPS values, to printed precision.
        printed = {
            "RapidMind": 0.0752,
            "CA-PRNG": 0.0199,
            "ParkMiller": 0.0562,
            "N/A": 0.0020,
            "xorgensGP": 0.3922,
            "GASPRNG": 0.0278,
        }
        for row in PRIOR_WORK:
            assert row.normalized == pytest.approx(printed[row.method], abs=1e-4), row.method

    def test_bsrng_vs_prior_normalized(self):
        # Reproduction finding (recorded in EXPERIMENTS.md): recomputing
        # Table 1's own arithmetic, BSRNG's normalized 2720/11750 ≈ 0.231
        # Gbps/GFLOPS beats every prior row EXCEPT xorgensGP's claimed
        # 527.5 Gbps on a GTX 480 (0.392) — the paper's Figure 11 framing
        # does not survive its own Table 1 numbers for that row.
        model = ThroughputModel()
        ours = model.predict_gbps("mickey2", "GTX 2080 Ti") / 11750.0
        beaten = {row.method for row in PRIOR_WORK if ours > row.normalized}
        assert beaten == {"RapidMind", "CA-PRNG", "ParkMiller", "N/A", "GASPRNG"}
        assert ours < next(r for r in PRIOR_WORK if r.method == "xorgensGP").normalized
