"""Telemetry for the generation pipeline: metrics, spans, exporters.

The package has three layers:

* :mod:`repro.obs.metrics` — the storage layer: a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-log2-bucket histograms, with picklable snapshots that merge
  across processes.
* :mod:`repro.obs.tracing` — span tracing
  (``with span("refill", algo=...)``) with wall + CPU time and a
  Chrome-trace-event exporter viewable in Perfetto.
* :mod:`repro.obs.export` — JSON / Prometheus-text / human renderings
  of a metrics snapshot (``repro stats``).

This module is the *switchboard*: instrumentation call sites throughout
the package go through the module-level helpers below (:func:`inc`,
:func:`observe`, :func:`set_gauge`, :func:`~repro.obs.tracing.span`),
which are **true no-ops while telemetry is disabled** — one module-level
flag check, no allocation, no locking.  Disabled is the default, so the
hot paths pay nothing unless a caller opts in:

>>> from repro import obs
>>> obs.enable_metrics()
>>> # ... run a generator ...
>>> snap = obs.registry().snapshot()

Worker processes never share the parent's registry.  They collect into a
fresh local registry via :func:`scoped` (spawn-context safe: the scope
is established inside the worker function, not inherited), snapshot it,
and ship the plain dict back through the pool result; the parent merges
with ``registry().merge(snap, extra_labels={"partition": pid})``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    dump,
    load_snapshot,
    render_human,
    render_json,
    render_prometheus,
    write_snapshot,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, log2_bucket
from repro.obs.context import TraceContext
from repro.obs.tracing import SpanCollector, SpanRecord, Tracer, span
from repro.obs import flight

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log2_bucket",
    "SpanRecord",
    "SpanCollector",
    "TraceContext",
    "Tracer",
    "flight",
    "span",
    "dump",
    "load_snapshot",
    "render_human",
    "render_json",
    "render_prometheus",
    "write_snapshot",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "registry",
    "enable_tracing",
    "disable_tracing",
    "active_tracer",
    "scoped",
    "inc",
    "observe",
    "set_gauge",
]

_metrics_enabled: bool = False
_registry: MetricsRegistry = MetricsRegistry()
_tracer: Tracer | None = None


# -- switches --------------------------------------------------------------------
def enable_metrics() -> None:
    """Turn metric collection on (process-wide)."""
    global _metrics_enabled
    _metrics_enabled = True


def disable_metrics() -> None:
    """Turn metric collection off; existing values are kept."""
    global _metrics_enabled
    _metrics_enabled = False


def metrics_enabled() -> bool:
    """Whether metric collection is currently on."""
    return _metrics_enabled


def registry() -> MetricsRegistry:
    """The currently active registry (the process-global one by default)."""
    return _registry


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer; spans start recording."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable_tracing() -> None:
    """Stop recording spans (the old tracer keeps its records)."""
    global _tracer
    _tracer = None


def active_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _tracer


@contextmanager
def scoped(reg: MetricsRegistry | None = None, enabled: bool = True):
    """Temporarily swap in a registry (worker processes, tests).

    Yields the scoped registry; on exit the previous registry and enable
    flag are restored exactly.  Not re-entrant across threads — this is
    process-level scoping for pool workers and test isolation.
    """
    global _registry, _metrics_enabled
    prev_reg, prev_enabled = _registry, _metrics_enabled
    _registry = reg if reg is not None else MetricsRegistry()
    _metrics_enabled = enabled
    try:
        yield _registry
    finally:
        _registry, _metrics_enabled = prev_reg, prev_enabled


# -- no-op-when-disabled instrumentation helpers ---------------------------------
def inc(name: str, n: int | float = 1, **labels) -> None:
    """Count *n* events on counter *name* (no-op while disabled)."""
    if not _metrics_enabled:
        return
    _registry.counter(name, **labels).inc(n)


def observe(name: str, value: int | float, **labels) -> None:
    """Record one histogram sample (no-op while disabled)."""
    if not _metrics_enabled:
        return
    _registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: int | float, **labels) -> None:
    """Set gauge *name* (no-op while disabled)."""
    if not _metrics_enabled:
        return
    _registry.gauge(name, **labels).set(value)
