"""Conversions between bit arrays, byte strings, integers and word streams.

Bit-order convention
--------------------
All packed representations in :mod:`repro` use **little bit order**: bit
``i`` of a byte/word is the bit with weight ``2**i``, and bit index ``k``
of a stream lives in byte ``k // 8`` at position ``k % 8``.  A single
convention everywhere keeps the bitsliced transpose, the PRNG output path
and the statistical tests mutually consistent.

Hex strings and Python integers, by contrast, follow the cryptographic
convention used in the eSTREAM/FIPS specifications: the *first* hex
character holds the *most significant* bits, and ``bits_from_hex`` yields
bits **msb-first** so that test-vector keys read naturally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BitsliceLayoutError

__all__ = [
    "as_bit_array",
    "bits_from_bytes",
    "bits_to_bytes",
    "bits_from_hex",
    "bits_to_hex",
    "bits_from_int",
    "bits_to_int",
    "bits_to_uint32",
    "bits_to_uint64",
    "uint32_to_bits",
    "uint64_to_bits",
    "parity",
]


def as_bit_array(bits, *, copy: bool = False) -> np.ndarray:
    """Validate and coerce *bits* to a ``uint8`` array of 0/1 values.

    Accepts any array-like of integers or booleans.  Raises
    :class:`~repro.errors.BitsliceLayoutError` when values other than 0/1
    are present.
    """
    arr = np.array(bits, dtype=np.uint8, copy=True) if copy else np.asarray(bits)
    if arr.dtype == np.bool_:
        arr = arr.astype(np.uint8)
    elif arr.dtype != np.uint8:
        arr = arr.astype(np.uint8)
    if arr.size and arr.max(initial=0) > 1:
        raise BitsliceLayoutError("bit arrays must contain only 0 and 1")
    return arr


def bits_from_bytes(data: bytes | bytearray | np.ndarray, n_bits: int | None = None) -> np.ndarray:
    """Unpack *data* into a bit array (little bit order).

    Parameters
    ----------
    data:
        Byte string or ``uint8`` array.
    n_bits:
        Optional truncation length; defaults to ``8 * len(data)``.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data.astype(np.uint8, copy=False)
    bits = np.unpackbits(buf, bitorder="little")
    if n_bits is not None:
        if n_bits > bits.size:
            raise BitsliceLayoutError(f"requested {n_bits} bits from only {bits.size}")
        bits = bits[:n_bits]
    return bits


def bits_to_bytes(bits) -> bytes:
    """Pack a bit array into bytes (little bit order, zero padded)."""
    return np.packbits(as_bit_array(bits), bitorder="little").tobytes()


def bits_from_hex(hex_string: str, n_bits: int | None = None) -> np.ndarray:
    """Parse a hex string into bits, msb-first (cryptographic convention).

    ``bits_from_hex("80")`` is ``[1, 0, 0, 0, 0, 0, 0, 0]`` — the leading
    nibble carries the most significant bits, matching how eSTREAM and
    FIPS test vectors print keys and IVs.
    """
    hex_string = hex_string.replace(" ", "").replace("_", "")
    if len(hex_string) % 2:
        hex_string = hex_string + "0"
    raw = bytes.fromhex(hex_string)
    buf = np.frombuffer(raw, dtype=np.uint8)
    bits = np.unpackbits(buf, bitorder="big")
    if n_bits is not None:
        if n_bits > bits.size:
            raise BitsliceLayoutError(f"requested {n_bits} bits from only {bits.size}")
        bits = bits[:n_bits]
    return bits


def bits_to_hex(bits) -> str:
    """Inverse of :func:`bits_from_hex` (msb-first, zero padded)."""
    arr = as_bit_array(bits)
    return np.packbits(arr, bitorder="big").tobytes().hex()


def bits_from_int(value: int, n_bits: int) -> np.ndarray:
    """Expand a non-negative integer into *n_bits* bits, lsb-first."""
    if value < 0:
        raise BitsliceLayoutError("bits_from_int requires a non-negative integer")
    if n_bits < 0:
        raise BitsliceLayoutError("n_bits must be non-negative")
    if value >> n_bits:
        raise BitsliceLayoutError(f"{value} does not fit in {n_bits} bits")
    out = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        out[i] = (value >> i) & 1
    return out


def bits_to_int(bits) -> int:
    """Collapse an lsb-first bit array into a Python integer."""
    arr = as_bit_array(bits)
    value = 0
    for i in range(arr.size - 1, -1, -1):
        value = (value << 1) | int(arr[i])
    return value


def _bits_to_words(bits, dtype) -> np.ndarray:
    arr = as_bit_array(bits)
    width = np.dtype(dtype).itemsize * 8
    if arr.size % width:
        pad = width - arr.size % width
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint8)])
    packed = np.packbits(arr, bitorder="little")
    return packed.view(np.dtype(dtype).newbyteorder("<")).astype(dtype, copy=False)


def bits_to_uint32(bits) -> np.ndarray:
    """Pack bits into a ``uint32`` stream (little bit order, zero padded)."""
    return _bits_to_words(bits, np.uint32)


def bits_to_uint64(bits) -> np.ndarray:
    """Pack bits into a ``uint64`` stream (little bit order, zero padded)."""
    return _bits_to_words(bits, np.uint64)


def _words_to_bits(words, dtype, n_bits: int | None) -> np.ndarray:
    arr = np.ascontiguousarray(words, dtype=dtype)
    le = arr.astype(np.dtype(dtype).newbyteorder("<"), copy=False)
    bits = np.unpackbits(le.view(np.uint8), bitorder="little")
    if n_bits is not None:
        if n_bits > bits.size:
            raise BitsliceLayoutError(f"requested {n_bits} bits from only {bits.size}")
        bits = bits[:n_bits]
    return bits


def uint32_to_bits(words, n_bits: int | None = None) -> np.ndarray:
    """Unpack a ``uint32`` stream into bits (little bit order)."""
    return _words_to_bits(words, np.uint32, n_bits)


def uint64_to_bits(words, n_bits: int | None = None) -> np.ndarray:
    """Unpack a ``uint64`` stream into bits (little bit order)."""
    return _words_to_bits(words, np.uint64, n_bits)


def parity(bits) -> int:
    """GF(2) sum (XOR reduction) of a bit array."""
    return int(np.bitwise_xor.reduce(as_bit_array(bits))) if np.asarray(bits).size else 0
