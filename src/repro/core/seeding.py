"""Seed expansion for lane initialisation.

The paper (§4.4): *"we employ a non-linear function to expand a carefully
selected pre-stored random number set, which generates an 80-bit IV for
each MICKEY module"*.  We make that concrete and reproducible with
SplitMix64 — the standard stateless seed-expansion mixer — so that one
user seed deterministically yields as many well-separated per-lane
key/IV/counter bits as a kernel asks for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecificationError

__all__ = ["splitmix64", "expand_seed_words", "expand_seed_bits", "derive_lane_material"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """The SplitMix64 finaliser applied elementwise (vectorized)."""
    with np.errstate(over="ignore"):  # mod-2^64 wraparound is the point
        z = np.asarray(x, dtype=np.uint64) + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def expand_seed_words(seed: int, n_words: int, stream: int = 0, word_offset: int = 0) -> np.ndarray:
    """Expand *seed* into *n_words* uint64 values.

    Distinct ``stream`` values give provably distinct counter ranges, so a
    cipher can draw key material, IV material and anything else from the
    same user seed without overlap.  ``word_offset`` starts the expansion
    mid-stream: ``expand(..., word_offset=k)`` equals ``expand(..., n +
    k)[k:]`` — the window property lane-partitioned multi-device setups
    rely on.
    """
    if n_words < 0 or word_offset < 0:
        raise SpecificationError("n_words and word_offset must be non-negative")
    seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        base = splitmix64(seed ^ (np.uint64(stream) * np.uint64(0xD6E8FEB86659FD93)))
        ctr = np.arange(word_offset, word_offset + n_words, dtype=np.uint64)
        return splitmix64(base + (ctr + np.uint64(1)) * _GOLDEN)


def expand_seed_bits(seed: int, shape: tuple[int, ...], stream: int = 0, bit_offset: int = 0) -> np.ndarray:
    """Expand *seed* into a 0/1 ``uint8`` array of the given *shape*.

    ``bit_offset`` selects a window of the stream's bit expansion
    (windows of the same seed/stream tile seamlessly — see
    :func:`expand_seed_words`).
    """
    if bit_offset < 0:
        raise SpecificationError("bit_offset must be non-negative")
    n_bits = int(np.prod(shape)) if shape else 0
    if n_bits == 0:
        return np.zeros(shape, dtype=np.uint8)
    first_word, skip = divmod(bit_offset, 64)
    n_words = -(-(skip + n_bits) // 64)
    words = expand_seed_words(seed, n_words, stream, word_offset=first_word)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")[skip : skip + n_bits]
    return bits.reshape(shape)


def derive_lane_material(
    seed: int,
    n_lanes: int,
    *,
    key_bits: int,
    iv_bits: int,
    shared_key: bool = False,
    lane_offset: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane (key, IV) bit matrices for a bitsliced cipher bank.

    Parameters
    ----------
    shared_key:
        When True all lanes share one key and only IVs differ — the
        standard "one key, 2^40 IVs" usage MICKEY's spec permits and the
        configuration the paper's generator uses.
    lane_offset:
        Global index of the first lane.  Material for lane ``o + i`` is
        identical whether drawn as lane ``i`` of an offset bank or lane
        ``o + i`` of a full bank — the §5.4 seed/IV-space partitioning:
        each device derives its own lane window and the union equals one
        big bank.

    Returns ``(keys, ivs)`` with shapes ``(n_lanes, key_bits)`` and
    ``(n_lanes, iv_bits)``.
    """
    if n_lanes <= 0:
        raise SpecificationError("n_lanes must be positive")
    if lane_offset < 0:
        raise SpecificationError("lane_offset must be non-negative")
    if shared_key:
        one = expand_seed_bits(seed, (1, key_bits), stream=1)
        keys = np.repeat(one, n_lanes, axis=0)
    else:
        keys = expand_seed_bits(seed, (n_lanes, key_bits), stream=1, bit_offset=lane_offset * key_bits)
    ivs = expand_seed_bits(seed, (n_lanes, iv_bits), stream=2, bit_offset=lane_offset * iv_bits)
    return keys, ivs
