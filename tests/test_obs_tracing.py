"""Span tracing: nesting, timing, and the Chrome-trace exporter."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.tracing import Tracer, span


@pytest.fixture
def tracer():
    t = obs.enable_tracing()
    yield t
    obs.disable_tracing()


def test_span_is_shared_noop_while_disabled():
    assert obs.active_tracer() is None
    assert span("a") is span("b", k=1)  # one shared object, no allocation
    with span("a"):
        pass  # and it is a working context manager


def test_span_records_name_args_and_timing(tracer):
    with span("refill", algo="grain"):
        time.sleep(0.002)
    (rec,) = tracer.records
    assert rec.name == "refill"
    assert rec.args == {"algo": "grain"}
    assert rec.dur_us >= 2000
    assert rec.cpu_us >= 0
    assert rec.ts_us >= 0


def test_span_nesting_depth(tracer):
    with span("outer"):
        with span("inner"):
            pass
    by_name = {r.name: r for r in tracer.records}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    # inner completes first, and sits inside outer's window
    inner, outer = by_name["inner"], by_name["outer"]
    assert outer.ts_us <= inner.ts_us
    assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0


def test_depth_is_per_thread(tracer):
    seen = []

    def worker():
        with span("t"):
            seen.append(tracer._tls.depth)

    with span("main"):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    # the worker thread starts at depth 0 regardless of main's nesting
    assert seen == [1]
    depths = {r.name: r.depth for r in tracer.records}
    assert depths["t"] == 0 and depths["main"] == 0


def test_span_survives_exceptions(tracer):
    with pytest.raises(ValueError):
        with span("boom"):
            raise ValueError("x")
    (rec,) = tracer.records
    assert rec.name == "boom"
    # depth bookkeeping unwound correctly
    with span("after"):
        pass
    assert tracer.records[-1].depth == 0


def test_chrome_trace_structure(tracer):
    with span("gen", algorithm="mickey2"):
        with span("refill"):
            pass
    trace = tracer.to_chrome_trace()
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert len(events) == 2
    for ev in events:
        assert ev["ph"] == "X" and ev["cat"] == "repro"
        assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
        assert "cpu_us" in ev["args"] and "depth" in ev["args"]
    gen = next(e for e in events if e["name"] == "gen")
    assert gen["args"]["algorithm"] == "mickey2"


def test_trace_write_is_loadable(tracer, tmp_path):
    with span("a"):
        pass
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"][0]["name"] == "a"


def test_clear_resets_records_and_epoch(tracer):
    with span("a"):
        pass
    tracer.clear()
    assert tracer.records == []
    with span("b"):
        pass
    assert tracer.records[0].ts_us < 1e6  # fresh epoch


def test_enable_tracing_accepts_existing_tracer():
    mine = Tracer()
    try:
        assert obs.enable_tracing(mine) is mine
        assert obs.active_tracer() is mine
    finally:
        obs.disable_tracing()
    assert obs.active_tracer() is None
