"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class BitsliceLayoutError(ReproError, ValueError):
    """A bitsliced array has an unexpected shape, dtype or lane count."""


class KeyScheduleError(ReproError, ValueError):
    """A cipher key or IV has an invalid length or type."""


class SpecificationError(ReproError, ValueError):
    """Parameters violate an algorithm's published specification."""


class ModelError(ReproError, ValueError):
    """The GPU performance model was queried with inconsistent inputs."""


class InsufficientDataError(ReproError, ValueError):
    """A statistical test was given fewer bits than it requires."""


class DeviceFailureError(ReproError, RuntimeError):
    """A device partition failed permanently (crash, hang or corruption
    that survived every retry the supervisor was allowed)."""


class PartitionCorruptionError(DeviceFailureError):
    """A partition's payload failed its CRC verification on receipt."""


class HealthTestError(ReproError, RuntimeError):
    """A startup self-test or continuous health test rejected generator
    output (SP 800-90B / FIPS 140-2 style gating)."""
