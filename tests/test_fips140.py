"""FIPS 140-2 battery: bound checks, pathological rejections and
acceptance across the strong generator family."""

import numpy as np
import pytest

from repro import BSRNG
from repro.errors import InsufficientDataError
from repro.nist import Fips140Report, fips140_battery
from repro.nist.fips140 import (
    BLOCK_BITS,
    RUNS_INTERVALS,
    long_run_check,
    monobit_check,
    poker_check,
    runs_check,
)


@pytest.fixture(scope="module")
def good_bits():
    return np.random.default_rng(0xF1B5).integers(0, 2, BLOCK_BITS, dtype=np.uint8)


class TestMonobit:
    def test_accepts_good(self, good_bits):
        ok, count = monobit_check(good_bits)
        assert ok and 9725 < count < 10275

    def test_boundary_exclusive(self):
        bits = np.zeros(BLOCK_BITS, np.uint8)
        bits[:9725] = 1
        assert not monobit_check(bits)[0]  # exactly 9725 fails
        bits[9725] = 1
        assert monobit_check(bits)[0]  # 9726 passes

    def test_rejects_all_ones(self):
        assert not monobit_check(np.ones(BLOCK_BITS, np.uint8))[0]

    def test_too_short_raises(self):
        with pytest.raises(InsufficientDataError):
            monobit_check(np.ones(BLOCK_BITS - 1, np.uint8))

    def test_only_first_block_used(self, good_bits):
        padded = np.concatenate([good_bits, np.ones(5000, np.uint8)])
        assert monobit_check(padded)[1] == monobit_check(good_bits)[1]


class TestPoker:
    def test_accepts_good(self, good_bits):
        ok, x = poker_check(good_bits)
        assert ok and 2.16 < x < 46.17

    def test_uniform_nibbles_too_perfect(self):
        # every nibble exactly equally frequent: X = 0, below 2.16.
        nibbles = np.tile(np.arange(16, dtype=np.uint8), 5000 // 16 + 1)[:5000]
        bits = ((nibbles[:, None] >> np.array([3, 2, 1, 0])) & 1).astype(np.uint8).ravel()
        ok, x = poker_check(bits)
        assert not ok and x < 2.16  # ≈0.013: 5000 % 16 != 0 leaves a remainder

    def test_constant_rejected(self):
        ok, x = poker_check(np.zeros(BLOCK_BITS, np.uint8))
        assert not ok and x == pytest.approx(75000.0)


class TestRuns:
    def test_accepts_good(self, good_bits):
        ok, detail = runs_check(good_bits)
        assert ok
        # every (value, length) key reported
        assert set(detail) == {(v, l) for v in (0, 1) for l in RUNS_INTERVALS}

    def test_alternating_rejected(self):
        # All runs have length 1: 10,000 of them, far above 2,685.
        ok, detail = runs_check(np.tile([0, 1], BLOCK_BITS // 2).astype(np.uint8))
        assert not ok
        assert detail[(0, 1)] == BLOCK_BITS // 2

    def test_run_counting_exact(self):
        # A hand-built prefix: 1 0 0 1 1 1 0 ... — spot-check the counter.
        bits = np.array([1, 0, 0, 1, 1, 1] + [0, 1] * ((BLOCK_BITS - 6) // 2), np.uint8)
        _, detail = runs_check(bits)
        assert detail[(0, 2)] >= 1
        assert detail[(1, 3)] >= 1


class TestLongRun:
    def test_accepts_good(self, good_bits):
        ok, longest = long_run_check(good_bits)
        assert ok and longest < 26

    def test_26_run_rejected(self):
        bits = np.random.default_rng(1).integers(0, 2, BLOCK_BITS, dtype=np.uint8)
        bits[1000:1026] = 1
        bits[999] = 0
        bits[1026] = 0
        ok, longest = long_run_check(bits)
        assert not ok and longest >= 26

    def test_25_run_allowed(self):
        bits = np.tile([0, 1], BLOCK_BITS // 2).astype(np.uint8)
        bits[1000:1025] = 1
        bits[999] = 0
        bits[1025] = 0
        ok, longest = long_run_check(bits)
        assert ok and longest == 25


class TestBattery:
    @pytest.mark.parametrize(
        "alg", ["mickey2", "grain", "trivium", "aes128ctr", "chacha20", "philox"]
    )
    def test_strong_generators_pass(self, alg):
        bits = BSRNG(alg, seed=0xF1F5, lanes=256).random_bits(BLOCK_BITS)
        report = fips140_battery(bits)
        assert report.passed, report.to_table()

    def test_all_zeros_fails_everything(self):
        report = fips140_battery(np.zeros(BLOCK_BITS, np.uint8))
        assert not report.passed
        assert not (report.monobit_ok or report.poker_ok or report.runs_ok or report.long_run_ok)

    def test_report_table(self, good_bits):
        table = fips140_battery(good_bits).to_table()
        assert "Monobit" in table and "LongRun" in table and "pass" in table

    def test_report_statistics_exposed(self, good_bits):
        report = fips140_battery(good_bits)
        assert isinstance(report, Fips140Report)
        assert report.statistics["ones"] == int(good_bits.sum())
        assert report.statistics["longest_run"] >= 1
