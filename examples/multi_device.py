#!/usr/bin/env python
"""Multi-device generation (paper §5.4).

Partitions an AES-CTR generation job across worker processes ("GPUs"),
reconstructs the global stream, verifies it equals the single-device
sequential output, and prints the paper-calibrated scaling curve.

Run:  python examples/multi_device.py
"""

import os
import time

from repro.gpu.multigpu import MultiDeviceGenerator, partition_counter_space, scaling_model

BLOCK_BYTES = 1 << 16
TOTAL_BLOCKS = 12


def main() -> None:
    print(f"host CPUs: {os.cpu_count()}")
    print()

    print("counter-space partitioning of", TOTAL_BLOCKS, "blocks over 3 devices:")
    for p in partition_counter_space(TOTAL_BLOCKS, 3):
        print(f"  device {p.device_id}: blocks [{p.start_block}, {p.start_block + p.n_blocks})")
    print()

    gen = MultiDeviceGenerator(
        "aes128ctr", seed=99, lanes=2048, n_devices=3, block_bytes=BLOCK_BYTES
    )
    t0 = time.perf_counter()
    multi = gen.generate(TOTAL_BLOCKS, parallel=True)
    t_multi = time.perf_counter() - t0

    t0 = time.perf_counter()
    single = gen.sequential_reference(TOTAL_BLOCKS)
    t_single = time.perf_counter() - t0

    assert multi == single
    print(f"reconstruction check: 3-device output == sequential stream  [OK]")
    print(f"  ({len(multi):,} bytes; multi {t_multi:.2f}s, single {t_single:.2f}s)")
    print()

    print("paper-calibrated scaling model (1.92x measured at 2 GPUs):")
    print(f"{'devices':>9}{'speedup':>9}{'efficiency':>12}")
    for n in (1, 2, 4, 8):
        s = scaling_model(n)
        print(f"{n:>9}{s:>9.2f}{s / n:>12.1%}")
    print()

    # The paper's literal phrasing — "the input parameters (e.g., the
    # seed, nonce, and counter) are shared and partitioned amongst all of
    # the available GPUs" — maps to lane windows for the stream ciphers:
    # every device derives its own slice of the per-lane key/IV material.
    from repro.gpu.multigpu import LanePartitionedGenerator
    import numpy as np

    lane_gen = LanePartitionedGenerator("mickey2", seed=99, total_lanes=32, n_devices=4)
    lanes = lane_gen.generate_lanes(256, parallel=True)
    assert np.array_equal(lanes, lane_gen.sequential_reference(256))
    print(
        f"lane partitioning: 4 devices x 8 MICKEY lanes == one 32-lane bank  [OK]"
        f"  ({lanes.shape[0]} lanes x {lanes.shape[1]} bits)"
    )


if __name__ == "__main__":
    main()
