"""SP 800-22 test 9: Maurer's Universal Statistical Test."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InsufficientDataError, SpecificationError
from repro.nist._utils import check_bits, erfc
from repro.nist.result import TestResult

__all__ = ["universal_test"]

# (L, expectedValue, variance) — SP 800-22 §2.9.4 table.
_TABLE = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
    13: (12.168070, 3.410),
    14: (13.167693, 3.416),
    15: (14.167488, 3.419),
    16: (15.167379, 3.421),
}

# n thresholds for the automatic L choice (sts mapping).
_L_THRESHOLDS = (
    (387840, 6),
    (904960, 7),
    (2068480, 8),
    (4654080, 9),
    (10342400, 10),
    (22753280, 11),
    (49643520, 12),
    (107560960, 13),
    (231669760, 14),
    (496435200, 15),
    (1059061760, 16),
)


def universal_test(bits, L: int | None = None, Q: int | None = None) -> TestResult:
    """Compressibility proxy: mean log-distance between pattern repeats.

    With default parameters the test needs ≥ 387,840 bits; for shorter
    research sequences pass explicit ``L``/``Q`` (NIST permits this, with
    the caveat that reference moments assume ``Q = 10·2^L``).
    """
    arr = check_bits(bits, 2000, "universal")
    n = arr.size
    if L is None:
        L_sel = None
        for threshold, candidate in _L_THRESHOLDS:
            if n >= threshold:
                L_sel = candidate
        if L_sel is None:
            raise InsufficientDataError(
                "universal test needs >= 387840 bits with automatic parameters; "
                "pass explicit L/Q for shorter sequences"
            )
        L = L_sel
    if L not in _TABLE:
        raise SpecificationError(f"L must be in [6, 16], got {L}")
    if Q is None:
        Q = 10 * (1 << L)
    n_blocks = n // L
    K = n_blocks - Q
    if K <= 0:
        raise InsufficientDataError("sequence too short for the chosen L/Q")

    # Non-overlapping L-bit block values, first bit most significant.
    trimmed = arr[: n_blocks * L].reshape(n_blocks, L)
    weights = 1 << np.arange(L - 1, -1, -1, dtype=np.int64)
    vals = trimmed @ weights

    # Initialisation: last occurrence of each pattern within the first Q blocks.
    last = np.zeros(1 << L, dtype=np.int64)
    init_vals = vals[:Q]
    last[init_vals] = np.arange(1, Q + 1)  # 1-indexed block numbers

    # Test segment: distance to previous occurrence, pattern by pattern.
    # Vectorized via grouped diffs: sort test positions by pattern value.
    test_vals = vals[Q:]
    pos = np.arange(Q + 1, n_blocks + 1)
    order = np.argsort(test_vals, kind="stable")
    sv = test_vals[order]
    sp = pos[order]
    prev = np.empty_like(sp)
    first_of_group = np.empty(sv.size, dtype=bool)
    first_of_group[0] = True
    first_of_group[1:] = sv[1:] != sv[:-1]
    prev[~first_of_group] = sp[:-1][~first_of_group[1:]]
    prev[first_of_group] = last[sv[first_of_group]]
    if np.any(prev[first_of_group] == 0):
        # A pattern never seen in the init segment: distance is from block 0
        # (the sts code initialises the table with zeros and takes log2 of
        # the full position, matching this behaviour).
        pass
    distances = sp - prev
    fn = float(np.sum(np.log2(distances)) / K)

    ev, var = _TABLE[L]
    c = 0.7 - 0.8 / L + (4 + 32.0 / L) * (K ** (-3.0 / L)) / 15.0
    sigma = c * math.sqrt(var / K)
    p = float(erfc(abs(fn - ev) / (math.sqrt(2.0) * sigma)))
    return TestResult(
        "Universal",
        [p],
        {"fn": fn, "expected": ev, "sigma": sigma, "L": L, "Q": Q, "K": K},
    )
