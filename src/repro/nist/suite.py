"""Suite driver and NIST-style aggregation (the paper's Table 3).

Running a battery on *many* sequences produces, per test:

* the **proportion** of sequences whose p-value ≥ α, checked against the
  NIST confidence band ``(1−α) ± 3·√(α(1−α)/s)``, and
* the **uniformity P-value**: a χ² over 10 equal p-value bins — this is
  the single "P-value" column the paper's Table 3 prints.

``run_suite`` takes a callable producing the *i*-th sequence so the
battery can stream gigabit workloads without holding them all in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import InsufficientDataError
from repro.nist._utils import igamc
from repro.nist.complexity import linear_complexity_test
from repro.nist.cusum import cumulative_sums_test
from repro.nist.entropy import approximate_entropy_test
from repro.nist.excursions import random_excursions_test, random_excursions_variant_test
from repro.nist.frequency import block_frequency_test, frequency_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.result import ALPHA
from repro.nist.runs import longest_run_test, runs_test
from repro.nist.serial import serial_test
from repro.nist.spectral import dft_test
from repro.nist.template import non_overlapping_template_test, overlapping_template_test
from repro.nist.universal import universal_test

__all__ = ["ALL_TESTS", "run_suite", "summarize_pvalues", "SuiteReport"]

#: name → callable(bits) -> TestResult, in Table-3 order.
ALL_TESTS: dict[str, Callable] = {
    "Frequency": frequency_test,
    "BlockFrequency": block_frequency_test,
    "CumulativeSums": cumulative_sums_test,
    "Runs": runs_test,
    "LongestRun": longest_run_test,
    "Rank": binary_matrix_rank_test,
    "FFT": dft_test,
    "NonOverlappingTemplate": non_overlapping_template_test,
    "OverlappingTemplate": overlapping_template_test,
    "Universal": universal_test,
    "ApproximateEntropy": approximate_entropy_test,
    "RandomExcursions": random_excursions_test,
    "RandomExcursionsVariant": random_excursions_variant_test,
    "Serial": serial_test,
    "LinearComplexity": linear_complexity_test,
}


def summarize_pvalues(p_values, alpha: float = ALPHA) -> dict:
    """NIST aggregation of one test's p-values across sequences.

    Returns proportion, the proportion confidence band, and the
    uniformity P-value (χ² over 10 bins; requires ≥ 2 samples — with a
    single sample the χ² statistic is meaningless, so ``uniformity_p``
    and ``uniformity_ok`` are reported as ``None`` = not applicable and
    the pass decision rests on the proportion alone).
    """
    ps = np.asarray(list(p_values), dtype=np.float64)
    s = ps.size
    if s == 0:
        raise InsufficientDataError("no p-values to summarize")
    proportion = float(np.mean(ps >= alpha))
    band = 3.0 * math.sqrt(alpha * (1 - alpha) / s)
    # both band edges clamp to the [0, 1] proportions they bound
    low = max(0.0, (1 - alpha) - band)
    out = {
        "n_sequences": s,
        "proportion": proportion,
        "proportion_low": low,
        "proportion_high": min(1.0, (1 - alpha) + band),
        "proportion_ok": proportion >= low,
    }
    if s < 2:
        out["uniformity_p"] = None
        out["uniformity_ok"] = None  # not applicable below 2 samples
        return out
    counts, _ = np.histogram(ps, bins=10, range=(0.0, 1.0))
    expected = s / 10.0
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    uniformity_p = igamc(9 / 2.0, chi2 / 2.0)
    out["uniformity_p"] = uniformity_p
    out["uniformity_ok"] = uniformity_p >= 0.0001  # NIST's uniformity threshold
    return out


def _row_ok(row: dict) -> bool:
    """One aggregated row's pass decision (``uniformity_ok is None`` =
    the χ² was not applicable, so the proportion criterion decides)."""
    return bool(row["proportion_ok"]) and row["uniformity_ok"] is not False


@dataclass
class SuiteReport:
    """Aggregated battery results across all sequences.

    ``errors`` counts, per test, the sequences dropped because the test
    raised :class:`~repro.errors.InsufficientDataError` on them — a test
    that dropped *some* sequences still aggregates (over the partial
    sample set) but the loss is first-class data, rendered by
    :meth:`to_table` so a partial battery never masquerades as a full
    one.  A test that dropped *every* sequence lands in ``skipped``.
    """

    n_sequences: int
    n_bits: int
    per_test: dict[str, dict] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    #: test name → sequences dropped by InsufficientDataError.
    errors: dict[str, int] = field(default_factory=dict)
    #: Supervision details when produced by the parallel runner
    #: (:func:`repro.nist.parallel.run_suite_parallel`); ``None`` for
    #: sequential batteries.  Not part of the aggregate comparison.
    supervision: object | None = None

    @property
    def all_passed(self) -> bool:
        """True when every test passes both NIST criteria.

        A battery that aggregated nothing (every test skipped, or no
        tests ran at all) reports ``False`` — an empty run is not a
        passing run.
        """
        if not self.per_test:
            return False
        return all(_row_ok(row) for row in self.per_test.values())

    def to_table(self) -> str:
        """Render in the layout of the paper's Table 3."""
        lines = [
            f"{'Test':<26}{'P-value':>12}{'Proportion':>12}  Result",
            "-" * 60,
        ]
        for name, row in self.per_test.items():
            pval = "n/a" if row["uniformity_p"] is None else f"{row['uniformity_p']:.6f}"
            dropped = self.errors.get(name, 0)
            note = f"  [dropped {dropped}/{self.n_sequences} seqs]" if dropped else ""
            lines.append(
                f"{name:<26}{pval:>12}{row['proportion']:>12.4f}"
                f"  {'Success' if _row_ok(row) else 'FAILURE'}{note}"
            )
        for name, reason in self.skipped.items():
            lines.append(f"{name:<26}{'—':>12}{'—':>12}  skipped ({reason})")
        return "\n".join(lines)


def run_suite(
    sequence_source: Callable[[int], np.ndarray] | Iterable[np.ndarray],
    n_sequences: int,
    tests: dict[str, Callable] | None = None,
) -> SuiteReport:
    """Run a battery over *n_sequences* sequences and aggregate.

    Parameters
    ----------
    sequence_source:
        Either ``f(i) -> bits`` or an iterable of bit arrays.
    n_sequences:
        How many sequences to draw.
    tests:
        Subset of :data:`ALL_TESTS` (default: all).

    Tests that raise :class:`~repro.errors.InsufficientDataError` on every
    sequence are reported as skipped rather than failing the battery
    (matching sts behaviour for e.g. Universal on short inputs); tests
    that raise on only *some* sequences aggregate the surviving samples
    and record the loss in :attr:`SuiteReport.errors`.

    All sequences must have the same length — the battery's sequence
    length is a single number (Table 3's "n") and a mixed-length sample
    set would silently change what the aggregation means; a mismatch
    raises :class:`~repro.errors.SpecificationError`.

    Since the QA framework landed this is a thin consumer of the plugin
    layer: the loop itself lives in :func:`repro.qa.battery.run_battery`
    (sts semantics preserved exactly — every sub-test p-value enters the
    aggregation as its own sample, skips record the first reason, and
    the plugin-driven battery reproduces the historical report
    bit-for-bit; ``tests/test_qa_conformance.py``).
    """
    # deferred import: repro.qa builds on this module's ALL_TESTS
    from repro.qa.battery import run_battery
    from repro.qa.registry import resolve_battery_plugin

    if tests is None:
        plugins = [resolve_battery_plugin(name) for name in ALL_TESTS]
    else:
        from repro.qa.plugin_api import as_battery_plugin

        plugins = [as_battery_plugin(name, fn) for name, fn in dict(tests).items()]
    return run_battery(sequence_source, n_sequences, plugins)
