"""Machine-readable benchmark emission — the perf trajectory's data feed.

The free-text tables under ``benchmarks/results/*.txt`` are for humans;
this module gives every bench a structured sibling:
``benchmarks/results/BENCH_<name>.json`` with a fixed schema::

    {
      "schema": 1,
      "name": "<bench name>",
      "params": {...},          # workload knobs (lanes, rows, scale, ...)
      "gbps": <float|null>,     # headline throughput, Gbit/s, when meaningful
      "wall_s": <float|null>,   # headline wall time, seconds, when meaningful
      "metrics": {...},         # any additional named numbers
      "timestamp": <unix seconds>,
      "date": "YYYY-MM-DDTHH:MM:SSZ"
    }

Later perf PRs diff these files to prove a win; dashboards and the CI
trend job parse them without scraping table text.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCHEMA_VERSION = 1


def emit_bench(
    name: str,
    *,
    params: dict | None = None,
    gbps: float | None = None,
    wall_s: float | None = None,
    metrics: dict | None = None,
) -> pathlib.Path:
    """Write ``results/BENCH_<name>.json`` and return its path.

    ``params`` records the workload configuration so two runs are
    comparable; ``metrics`` takes any extra named numbers (per-kernel
    series, speedups) that do not fit the two headline fields.
    """
    now = time.time()
    record = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "params": dict(params or {}),
        "gbps": None if gbps is None else round(float(gbps), 6),
        "wall_s": None if wall_s is None else round(float(wall_s), 6),
        "metrics": {k: _jsonable(v) for k, v in (metrics or {}).items()},
        "timestamp": round(now, 3),
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def _jsonable(v):
    """Round floats; pass everything JSON already understands through."""
    if isinstance(v, float):
        return round(v, 6)
    if isinstance(v, dict):
        return {k: _jsonable(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return v
