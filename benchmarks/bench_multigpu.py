"""E6 — §5.4: multi-GPU scaling.

Measured: wall-clock speedup of process-backed device counts 1/2/4 on a
fixed AES-CTR generation job (the paper's counter-partitioning example),
with the sequential-reconstruction equivalence checked alongside.
Modeled: the paper-calibrated scaling curve (1.92x at 2 devices,
degrading toward 8).

Note: on a single-core machine the measured speedup cannot exceed 1.0 —
the speedup assertion only applies when multiple CPUs exist.  The
partitioning/reconstruction logic is exercised either way.
"""

import os
import time

import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table

from repro.gpu.multigpu import MultiDeviceGenerator, scaling_model

BLOCK_BYTES = 1 << 17
TOTAL_BLOCKS = 32 if FULL_SCALE else 12


def run_job(n_devices: int, parallel: bool = True) -> float:
    gen = MultiDeviceGenerator(
        "aes128ctr", seed=3, lanes=4096, n_devices=n_devices, block_bytes=BLOCK_BYTES
    )
    t0 = time.perf_counter()
    out = gen.generate(TOTAL_BLOCKS, parallel=parallel)
    dt = time.perf_counter() - t0
    assert len(out) == TOTAL_BLOCKS * BLOCK_BYTES
    return dt


def test_multigpu_scaling(benchmark):
    run_job(2)  # warm pools and the S-box circuit cache
    base = min(run_job(1, parallel=False) for _ in range(2))
    measured = {1: 1.0}
    for n in (2, 4):
        measured[n] = base / min(run_job(n) for _ in range(2))

    cpus = os.cpu_count() or 1
    lines = [
        f"host CPUs: {cpus}   job: {TOTAL_BLOCKS} x {BLOCK_BYTES} B of AES-CTR",
        "",
        f"{'devices':>8}{'measured speedup':>18}{'model speedup':>15}{'paper':>8}",
        "-" * 49,
    ]
    paper = {1: "1.00", 2: "1.92", 4: "—"}
    for n in (1, 2, 4):
        lines.append(f"{n:>8}{measured[n]:>18.2f}{scaling_model(n):>15.2f}{paper[n]:>8}")
    emit_table("multigpu_scaling", lines)
    emit_bench(
        "multigpu_scaling",
        params={
            "block_bytes": BLOCK_BYTES,
            "total_blocks": TOTAL_BLOCKS,
            "host_cpus": cpus,
        },
        wall_s=base,
        metrics={
            "measured_speedup": {str(k): v for k, v in measured.items()},
            "model_speedup": {str(n): scaling_model(n) for n in (1, 2, 4, 8)},
        },
    )
    benchmark.extra_info["measured"] = {str(k): round(v, 3) for k, v in measured.items()}
    benchmark.pedantic(lambda: run_job(2), rounds=1, iterations=1)

    # The model reproduces the paper's curve unconditionally.
    assert scaling_model(2) == pytest.approx(1.92, abs=0.005)
    assert scaling_model(8) < 8 * 0.9
    # Real concurrency needs real cores.
    if cpus >= 2:
        assert measured[2] > 1.2


def test_multigpu_equivalence(benchmark):
    """§5.4's reconstruction property, on the counter-seeking kernel and
    an LFSR (discard-seek) kernel."""

    def check():
        for alg in ("aes128ctr", "mickey2"):
            gen = MultiDeviceGenerator(alg, seed=5, lanes=256, n_devices=3, block_bytes=4096)
            assert gen.generate(6, parallel=False) == gen.sequential_reference(6), alg
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
