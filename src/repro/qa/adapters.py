"""Builtin plugin adapters: SP 800-22, analysis checks, new families.

Everything the repo already knows how to measure becomes a plugin here:

* the 15 SP 800-22 tests (:data:`repro.nist.suite.ALL_TESTS`), wrapped
  by :func:`nist_adapter` with their per-test hard data floors and the
  relative costs from :data:`repro.nist.parallel.TEST_COST`;
* the :mod:`repro.analysis` checks, recast as pass/fail or Bonferroni
  detectors (``battery=False`` — their p-values are conservative, not
  uniform under H0);
* the dieharder-inspired families (:mod:`repro.qa.dieharder`) and the
  structure detectors (:mod:`repro.qa.structure`).

:func:`register_builtins` installs them in that order, which fixes the
default registry's battery column order (SP 800-22 Table-3 prefix
first — the conformance guarantee).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from scipy.special import erfc

from repro.analysis import (
    autocorrelation,
    min_entropy_estimate,
    periodic_bias,
    shannon_entropy_estimate,
)
from repro.errors import SpecificationError
from repro.nist.parallel import TEST_COST
from repro.nist.suite import ALL_TESTS
from repro.qa.dieharder import birthday_spacings_test, permutations_test
from repro.qa.plugin_api import PluginResult, QAPlugin
from repro.qa.structure import ecb_structure_test, repeating_xor_test

__all__ = ["nist_adapter", "register_builtins", "NIST_MIN_BITS"]

#: Hard data floors of the SP 800-22 tests with their default parameters
#: (from each test's own ``check_bits`` call; content-dependent
#: requirements beyond the floor still surface as runtime skips).
NIST_MIN_BITS: dict[str, int] = {
    "Frequency": 100,
    "BlockFrequency": 128,
    "CumulativeSums": 100,
    "Runs": 100,
    "LongestRun": 128,
    "Rank": 38 * 32 * 32,
    "FFT": 1000,
    "NonOverlappingTemplate": 8 * 8 * 9,
    "OverlappingTemplate": 1032,
    "Universal": 2000,
    "ApproximateEntropy": 128,
    "RandomExcursions": 1000,
    "RandomExcursionsVariant": 1000,
    "Serial": 128,
    "LinearComplexity": 20 * 500,
}

#: Tests too heavy to run per window online (cost on the
#: :data:`~repro.nist.parallel.TEST_COST` scale above this stay offline).
_STREAMING_COST_CEILING = 16.0


def nist_adapter(name: str, fn: Callable) -> QAPlugin:
    """Wrap one SP 800-22 test callable as a battery-capable plugin.

    The adapter is intentionally thin — ``fn(bits)`` already returns a
    :class:`~repro.nist.result.TestResult` and raises
    :class:`~repro.errors.InsufficientDataError`, which
    :meth:`~repro.qa.plugin_api.QAPlugin.run` converts to a skip — so a
    runtime-patched ``ALL_TESTS`` entry behaves identically to the
    original (the live-primitive property the battery relies on).
    """
    cost = float(TEST_COST.get(name, 1.0))
    return QAPlugin(
        name=name,
        fn=fn,
        family="nist",
        min_bits=NIST_MIN_BITS.get(name, 1),
        alpha=1e-6,
        battery=True,
        streaming=cost <= _STREAMING_COST_CEILING,
        cost=cost,
        source="builtin",
        description=f"SP 800-22 {name} test",
    )


def _autocorrelation_plugin(bits, max_lag: int = 64) -> PluginResult:
    """Serial autocorrelation, Bonferroni over lags 1..max_lag.

    Each lag's coefficient is ~N(0, 1/n) under H0; the worst two-sided
    normal p across lags is multiplied by ``max_lag``.  A constant
    sequence (zero variance) is maximally non-random: p = 0.
    """
    arr = np.asarray(bits)
    try:
        r = autocorrelation(arr, max_lag=max_lag)
    except SpecificationError as exc:
        if "constant" in str(exc):
            return PluginResult(
                status="ok", p_values=(0.0,), statistics={"constant": True}
            )
        raise
    z = np.abs(r) * math.sqrt(arr.size)
    worst = int(np.argmax(z))
    p_each = erfc(z / math.sqrt(2.0))
    p = min(1.0, max_lag * float(p_each.min()))
    return PluginResult(
        status="ok",
        p_values=(p,),
        statistics={"worst_lag": worst + 1, "worst_z": float(z[worst])},
    )


def _periodic_bias_plugin(bits, period: int = 64) -> PluginResult:
    """Per-phase bias at a conjectured lane period, Bonferroni over phases."""
    report = periodic_bias(bits, period=period)
    z = float(report["z_score"])
    p = min(1.0, period * float(erfc(z / math.sqrt(2.0))))
    return PluginResult(
        status="ok",
        p_values=(p,),
        statistics={
            "period": period,
            "worst_phase": int(report["worst_phase"]),
            "max_deviation": float(report["max_deviation"]),
            "z_score": z,
        },
    )


def _entropy_gate_plugin(
    bits, estimator: str = "shannon", block_size: int = 8, threshold: float = 0.95
) -> PluginResult:
    """Threshold gate on a plug-in entropy estimate (pass=1.0 / fail=0.0).

    The thresholds leave generous head-room for estimator bias at the
    declared minimum window, so the false-fire rate on true randomness
    is negligible (far below any alpha) — degenerate p-values, hence
    ``battery=False`` on the registered plugins.
    """
    if estimator == "shannon":
        h = shannon_entropy_estimate(bits, block_size=block_size)
    elif estimator == "min":
        h = min_entropy_estimate(bits, block_size=block_size)
    else:
        raise SpecificationError(f"unknown entropy estimator {estimator!r}")
    return PluginResult(
        status="ok",
        p_values=(1.0 if h >= threshold else 0.0,),
        statistics={"entropy_per_bit": h, "threshold": threshold},
    )


def register_builtins(registry) -> None:
    """Install every builtin plugin, fixed order (see module docstring)."""
    for name, fn in ALL_TESTS.items():
        registry.register(nist_adapter(name, fn))
    registry.register_all(
        [
            QAPlugin(
                name="Autocorrelation",
                fn=_autocorrelation_plugin,
                family="analysis",
                min_bits=4096,
                params={"max_lag": 64},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=2.0,
                description="serial autocorrelation, Bonferroni over lags",
            ),
            QAPlugin(
                name="PeriodicBias",
                fn=_periodic_bias_plugin,
                family="analysis",
                min_bits=32768,
                params={"period": 64},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=1.0,
                description="per-phase bias at the lane-interleave period",
            ),
            QAPlugin(
                name="ShannonEntropy",
                fn=_entropy_gate_plugin,
                family="analysis",
                min_bits=16384,
                params={"estimator": "shannon", "block_size": 8, "threshold": 0.95},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=0.5,
                description="plug-in Shannon entropy gate (per-bit threshold)",
            ),
            QAPlugin(
                name="MinEntropy",
                fn=_entropy_gate_plugin,
                family="analysis",
                min_bits=16384,
                params={"estimator": "min", "block_size": 8, "threshold": 0.75},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=0.5,
                description="plug-in min-entropy gate (per-bit threshold)",
            ),
            QAPlugin(
                name="BirthdaySpacings",
                fn=birthday_spacings_test,
                family="dieharder",
                min_bits=8 * 256 * 20,
                params={"n_birthdays": 256, "bits_per_birthday": 20, "trials": 8},
                alpha=1e-6,
                # the duplicate count is discrete, so its p-value is not
                # uniform under H0 — NIST's uniformity chi^2 would reject a
                # *good* generator given enough sequences; tail-only use.
                battery=False,
                streaming=True,
                cost=2.0,
                description="Marsaglia birthday spacings (duplicate-spacing Poisson)",
            ),
            QAPlugin(
                name="OverlappingPermutations",
                fn=permutations_test,
                family="dieharder",
                min_bits=(5 * 120 + 4) * 32,
                params={"order": 5, "word_bits": 32, "overlap": True},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=3.0,
                description="overlapping 5-word orderings (conservative chi^2)",
            ),
            QAPlugin(
                name="EcbStructure",
                fn=ecb_structure_test,
                family="structure",
                min_bits=4096,
                params={"block_bytes": 16},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=0.5,
                description="duplicate 16-byte blocks vs the birthday bound",
            ),
            QAPlugin(
                name="RepeatingXor",
                fn=repeating_xor_test,
                family="structure",
                min_bits=8 * (64 + 128),
                params={"max_key_bytes": 64, "min_overlap_bytes": 128},
                alpha=1e-6,
                battery=False,
                streaming=True,
                cost=2.0,
                description="repeating-key XOR via shifted Hamming distance",
            ),
        ]
    )
