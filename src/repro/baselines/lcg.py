"""64-bit linear congruential generator (Knuth MMIX constants).

A historical baseline: cheap, long-period, but with weak low bits —
another negative-control fixture for the statistical test suite.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._bank import StreamBank

__all__ = ["LCG64Bank"]

_A = np.uint64(6364136223846793005)
_C = np.uint64(1442695040888963407)


class LCG64Bank(StreamBank):
    """``n_streams`` 64-bit LCGs in lockstep (emitting the high 32 bits,
    which pass far more tests than the low ones)."""

    word_dtype = np.uint32
    ops_per_word = 3.0

    def _init_state(self, stream_seeds: np.ndarray) -> None:
        self._x = stream_seeds.copy()

    def _step(self) -> np.ndarray:
        self._x = _A * self._x + _C
        return (self._x >> np.uint64(32)).astype(np.uint32)
