"""Elastic worker fleet: heartbeat-supervised membership over a transport.

The batch scale-out layers (:mod:`repro.gpu.multigpu`) and the service
pool (:mod:`repro.serve.engine`) both treat workers as fire-and-forget
pool jobs: a dead worker is only discovered when its result fails to
arrive, and recovery is per call.  The paper's multi-GPU measurements
(§VI, 2–8 devices) share the same assumption — every device is healthy
for the whole run.  This package generalises that to *supervised
membership* so a long-lived deployment survives workers that die, hang,
or silently degrade:

* :mod:`repro.fleet.transport` — the message plane: worker
  registration, periodic heartbeats, job dispatch and results, behind a
  :class:`~repro.fleet.transport.Transport` interface.  The shipped
  implementation runs local processes (:class:`LocalProcessTransport`);
  the interface is message-passing end to end, so a socket transport for
  remote hosts slots in without touching the controller.
* :mod:`repro.fleet.worker` — the long-lived worker loop: register,
  heartbeat on an interval, serve counter-space chunk jobs through a
  cached :class:`~repro.serve.engine.RangeSource` front, honour
  fleet-level ``REPRO_FAULT_PLAN`` faults (heartbeat silence, slow-bleed
  corruption) for deterministic chaos drills.
* :mod:`repro.fleet.controller` — :class:`FleetController`:
  deadline-based liveness over the heartbeats, per-worker SP 800-90B
  output screening (RCT/APT from :mod:`repro.robust.health`), CRC
  receipt verification, eviction with **lease reassignment** (chunk
  leases follow :class:`~repro.serve.leases.LeaseManager`'s
  never-reissue semantics, so the merged output stays bit-identical to a
  single-device run), elastic resizing, and inline degradation when the
  whole fleet is gone.

Everything the controller observes is published through :mod:`repro.obs`
(`repro_fleet_workers`, `repro_fleet_evictions_total`, ...), and
:class:`~repro.serve.engine.ServeEngine` can mount a fleet in place of
its anonymous pool (``repro serve --fleet N``).  See DESIGN.md §13.
"""

from repro.fleet.controller import FleetConfig, FleetController, FleetEvent, WorkerInfo
from repro.fleet.transport import (
    ChunkJob,
    LocalProcessTransport,
    Message,
    Transport,
    WorkerSpec,
)

__all__ = [
    "ChunkJob",
    "FleetConfig",
    "FleetController",
    "FleetEvent",
    "LocalProcessTransport",
    "Message",
    "Transport",
    "WorkerInfo",
    "WorkerSpec",
]
