"""E5 — Table 3: NIST SP 800-22 battery on the bitsliced MICKEY output.

The paper runs 1,000 sequences of 1 Mbit each (sts-2.1.2 defaults).  That
takes ~an hour in this implementation, so the default here is CI-scaled —
REPRO_FULL=1 restores paper scale:

                 sequences   bits each
  default             48       100,000
  REPRO_FULL=1      1000     1,000,000

Both print the same Table-3 layout (per-test uniformity P-value,
proportion, Success/FAILURE).
"""

import time

from _emit import emit_bench
from conftest import FULL_SCALE, emit_table

from repro.core.generator import BSRNG
from repro.nist import ALL_TESTS, run_suite

N_SEQUENCES = 1000 if FULL_SCALE else 48
N_BITS = 1_000_000 if FULL_SCALE else 100_000


def run_battery():
    rng = BSRNG("mickey2", seed=0xB5B5, lanes=4096)
    return run_suite(lambda i: rng.random_bits(N_BITS), N_SEQUENCES, tests=ALL_TESTS)


def test_table3_nist_mickey(benchmark):
    t0 = time.perf_counter()
    report = benchmark.pedantic(run_battery, rounds=1, iterations=1)
    battery_s = time.perf_counter() - t0
    lines = [
        f"NIST SP 800-22 on bitsliced MICKEY 2.0 — "
        f"{report.n_sequences} sequences x {report.n_bits} bits",
        "",
        report.to_table(),
    ]
    emit_table("table3_nist", lines)
    emit_bench(
        "table3_nist",
        params={
            "n_sequences": N_SEQUENCES,
            "n_bits": N_BITS,
            "full_scale": FULL_SCALE,
        },
        wall_s=battery_s,
        metrics={
            "tests_run": len(report.per_test),
            "tests_skipped": len(report.skipped),
        },
    )

    # The paper's Table 3: every test passes.  At CI scale some tests are
    # skipped for insufficient data (as sts itself would); every test that
    # ran must pass both NIST criteria.
    assert report.per_test, "battery produced no results"
    failing = [
        name
        for name, row in report.per_test.items()
        if not (row["proportion_ok"] and row["uniformity_ok"])
    ]
    assert not failing, f"NIST failures: {failing}"
    # At full scale nothing may be skipped.
    if FULL_SCALE:
        assert not report.skipped
