"""Counter-space leases: deterministic, non-overlapping stream slices.

The daemon serves one logical BSRNG stream — a fixed ``(algorithm, seed,
lanes, ...)`` configuration whose output is a pure function of the byte
offset.  Concurrency safety therefore reduces to an allocation problem:
every client must draw from a slice of the stream no other client ever
touches.  A :class:`LeaseManager` is that allocator.

Invariants (property-tested in ``tests/test_serve_leases.py``):

* **Partition** — the set of all leases ever granted tiles the prefix
  ``[0, high_water)`` of the stream: pairwise disjoint, union gap-free
  from offset 0.  Offsets are granted in strictly increasing order and
  *never reissued*: randomness handed to one client must not be replayed
  to another, even after the first client disconnects (releasing a lease
  marks it done, it does not return bytes to a free pool).
* **Durability** — every grant/release is appended to a JSONL journal
  *before* any byte of the lease is served, so a daemon restarted over
  the same journal resumes allocation at the recorded high-water mark
  and cannot re-grant a slice a dead client may already have received.
  Unreleased leases of a previous incarnation are adopted as
  ``orphaned`` — their clients are gone, their bytes stay burned.

Because a lease is just ``(offset, length)`` and the stream is
deterministic, any client can audit its bytes offline::

    rng = BSRNG(algorithm, seed=seed, lanes=lanes)
    rng.skip_bytes(lease.offset)
    assert rng.read(lease.length) == received
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from repro import obs
from repro.errors import SpecificationError

__all__ = ["Lease", "LeaseManager"]


@dataclass(frozen=True)
class Lease:
    """One granted slice ``[offset, offset + length)`` of the stream."""

    lease_id: int
    offset: int
    length: int
    client: str = ""

    @property
    def end(self) -> int:
        """First byte offset past the lease."""
        return self.offset + self.length

    def to_dict(self) -> dict:
        """JSON-serialisable form (the journal/status record)."""
        return {
            "lease_id": self.lease_id,
            "offset": self.offset,
            "length": self.length,
            "client": self.client,
        }


class LeaseManager:
    """Grant non-overlapping, gap-free byte-range leases on one stream.

    Parameters
    ----------
    journal_path:
        Append-only JSONL journal.  ``None`` keeps the manager purely
        in-memory (tests, benchmarks).  When the file already exists its
        records are replayed first: allocation resumes past every
        previously granted lease and that incarnation's unreleased
        leases are adopted as orphaned.
    max_lease_bytes:
        Upper bound on one grant (guards the daemon against a client
        requesting a petabyte in one call).

    Thread safety: all mutation happens under one internal lock; the
    daemon calls this from the event loop, tests call it from anywhere.
    """

    def __init__(
        self,
        journal_path: str | None = None,
        max_lease_bytes: int = 1 << 30,
    ) -> None:
        if max_lease_bytes <= 0:
            raise SpecificationError("max_lease_bytes must be positive")
        self.max_lease_bytes = max_lease_bytes
        self.journal_path = journal_path
        self._lock = threading.Lock()
        self._next_offset = 0
        self._next_id = 0
        self._active: dict[int, Lease] = {}
        self._released = 0
        self._orphaned: list[Lease] = []
        self._journal_fh = None
        if journal_path is not None:
            self._resume(journal_path)
            self._journal_fh = open(journal_path, "a", encoding="utf-8")

    # -- journal -----------------------------------------------------------------
    def _resume(self, path: str) -> None:
        """Replay an existing journal: adopt its high water and orphans."""
        if not os.path.exists(path):
            return
        active: dict[int, Lease] = {}
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SpecificationError(
                        f"{path}:{lineno}: corrupt journal line ({exc})"
                    ) from None
                op = rec.get("op")
                if op == "acquire":
                    lease = Lease(
                        rec["lease_id"], rec["offset"], rec["length"], rec.get("client", "")
                    )
                    if lease.offset != self._next_offset:
                        raise SpecificationError(
                            f"{path}:{lineno}: journal gap — lease {lease.lease_id} "
                            f"at offset {lease.offset}, expected {self._next_offset}"
                        )
                    active[lease.lease_id] = lease
                    self._next_offset = lease.end
                    self._next_id = max(self._next_id, lease.lease_id + 1)
                elif op == "release":
                    if active.pop(rec["lease_id"], None) is not None:
                        self._released += 1
                else:
                    raise SpecificationError(
                        f"{path}:{lineno}: unknown journal op {op!r}"
                    )
        # the previous incarnation's unreleased leases: clients are gone,
        # bytes stay burned (never re-granted)
        self._orphaned = sorted(active.values(), key=lambda lease: lease.offset)

    def _append(self, record: dict) -> None:
        if self._journal_fh is not None:
            self._journal_fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._journal_fh.flush()
            os.fsync(self._journal_fh.fileno())

    def close(self) -> None:
        """Flush and close the journal (the manager stays queryable)."""
        with self._lock:
            if self._journal_fh is not None:
                self._journal_fh.close()
                self._journal_fh = None

    # -- allocation --------------------------------------------------------------
    def acquire(self, length: int, client: str = "") -> Lease:
        """Grant the next ``length`` stream bytes as a new lease.

        The journal record is durable before the lease is returned, so a
        crash between grant and first served byte burns the range rather
        than risking a replay to a different client.
        """
        if length <= 0:
            raise SpecificationError("lease length must be positive")
        if length > self.max_lease_bytes:
            raise SpecificationError(
                f"lease length {length} exceeds max_lease_bytes {self.max_lease_bytes}"
            )
        with self._lock:
            lease = Lease(self._next_id, self._next_offset, length, client)
            self._append({"op": "acquire", **lease.to_dict()})
            self._next_id += 1
            self._next_offset = lease.end
            self._active[lease.lease_id] = lease
            obs.inc("repro_serve_leases_total")
            obs.set_gauge("repro_serve_lease_high_water_bytes", self._next_offset)
            obs.set_gauge("repro_serve_active_leases", len(self._active))
            return lease

    def release(self, lease_id: int) -> bool:
        """Mark a lease done.  Its byte range is consumed forever —
        releasing never returns bytes to a free pool.  Returns whether
        the id named an active lease (double-release is a no-op)."""
        with self._lock:
            lease = self._active.pop(lease_id, None)
            if lease is None:
                return False
            self._append({"op": "release", "lease_id": lease_id})
            self._released += 1
            obs.set_gauge("repro_serve_active_leases", len(self._active))
            return True

    # -- introspection -----------------------------------------------------------
    @property
    def high_water(self) -> int:
        """First never-granted stream offset (total bytes leased)."""
        with self._lock:
            return self._next_offset

    def active_leases(self) -> list[Lease]:
        """Currently active (granted, unreleased) leases, by offset."""
        with self._lock:
            return sorted(self._active.values(), key=lambda lease: lease.offset)

    def orphaned_leases(self) -> list[Lease]:
        """Leases adopted unreleased from a previous incarnation."""
        with self._lock:
            return list(self._orphaned)

    def stats(self) -> dict:
        """Snapshot for ``/v1/status``."""
        with self._lock:
            return {
                "high_water_bytes": self._next_offset,
                "active": len(self._active),
                "released": self._released,
                "orphaned": len(self._orphaned),
                "active_leases": [lease.to_dict() for lease in
                                  sorted(self._active.values(), key=lambda l: l.offset)],
            }
