"""The generated-kernel MICKEY bank (paper §4.4, closed-loop):
emitted code must be interchangeable with the hand-vectorized bank."""

import numpy as np
import pytest

from repro.ciphers.mickey import Mickey2
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.mickey_generated import GeneratedMickey2
from repro.core.engine import BitslicedEngine
from repro.errors import KeyScheduleError


@pytest.fixture(scope="module")
def material():
    rng = np.random.default_rng(0xF00D)
    return (
        rng.integers(0, 2, (7, 80), dtype=np.uint8),
        rng.integers(0, 2, (7, 40), dtype=np.uint8),
    )


class TestGeneratedKernel:
    def test_matches_hand_vectorized(self, material):
        keys, ivs = material
        a = BitslicedMickey2(BitslicedEngine(n_lanes=7, dtype=np.uint8))
        b = GeneratedMickey2(BitslicedEngine(n_lanes=7, dtype=np.uint8))
        a.load(keys, ivs)
        b.load(keys, ivs)
        assert np.array_equal(a.keystream_bits(192), b.keystream_bits(192))

    def test_matches_reference_per_lane(self, material):
        keys, ivs = material
        bank = GeneratedMickey2(BitslicedEngine(n_lanes=7, dtype=np.uint8))
        bank.load(keys, ivs)
        got = bank.keystream_bits(96)
        for k in range(7):
            ref = Mickey2(keys[k], iv=ivs[k]).keystream(96)
            assert np.array_equal(got[k], ref), k

    def test_no_iv_variant(self):
        keys = np.random.default_rng(3).integers(0, 2, (4, 80), dtype=np.uint8)
        a = BitslicedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        b = GeneratedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        a.load(keys, None)
        b.load(keys, None)
        assert np.array_equal(a.keystream_bits(64), b.keystream_bits(64))

    def test_seed_path_matches(self):
        a = BitslicedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint16)).seed(99)
        b = GeneratedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint16)).seed(99)
        assert np.array_equal(a.keystream_bits(64), b.keystream_bits(64))

    def test_requires_load(self):
        bank = GeneratedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.next_planes(4)

    def test_key_shape_enforced(self):
        bank = GeneratedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((3, 80), np.uint8))

    def test_netlist_cheaper_than_hand_tally(self):
        # The generated kernel is the *optimised* netlist: CSE and
        # constant folding land well below the hand-vectorized tally.
        hand = BitslicedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        gen = GeneratedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8))
        assert gen.gates_per_output_bit() < hand.gates_per_output_bit()

    def test_gate_accounting_per_clock(self):
        bank = GeneratedMickey2(BitslicedEngine(n_lanes=4, dtype=np.uint8)).seed(1)
        bank.engine.reset_gate_counts()
        bank.next_planes(5)
        snap = bank.engine.counter.snapshot()
        # 5 clocks of the optimised netlist (logic gates only; the z-plane
        # XOR in next_planes is outside the generated kernel)
        assert snap["total"] == 5 * int(bank.gates_per_output_bit())
