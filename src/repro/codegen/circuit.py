"""A minimal gate-level circuit IR with hash-consing and NumPy evaluation.

Circuits are DAGs of XOR/AND/OR/NOT nodes over named inputs and the
constants 0/1.  The builder hash-conses structurally identical nodes and
folds constants, so naively-written generators still produce reasonably
tight gate lists.  Evaluation is vectorized: feed each input a NumPy word
array (a bitsliced plane) and every gate becomes one full-width vector op
— exactly the execution model of the paper's generated CUDA kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpecificationError

__all__ = ["Node", "Circuit", "CircuitBuilder"]

_COMMUTATIVE = {"xor", "and", "or"}


@dataclass(frozen=True)
class Node:
    """One gate (or input/constant) in the DAG."""

    id: int
    op: str  # 'in' | 'const' | 'xor' | 'and' | 'or' | 'not'
    args: tuple = ()
    name: str | None = None  # input name, or constant value via args[0]


class CircuitBuilder:
    """Construct a :class:`Circuit` gate by gate.

    All gate methods take and return :class:`Node`; use :meth:`input` to
    declare inputs and :meth:`output` to name result nodes.
    """

    def __init__(self) -> None:
        self._nodes: list[Node] = []
        self._cse: dict[tuple, Node] = {}
        self._inputs: list[str] = []
        self._outputs: dict[str, Node] = {}
        self.zero = self._mk("const", (0,))
        self.one = self._mk("const", (1,))

    def _mk(self, op: str, args: tuple, name: str | None = None) -> Node:
        if op in _COMMUTATIVE:
            args = tuple(sorted(args))
        key = (op, args, name)
        hit = self._cse.get(key)
        if hit is not None:
            return hit
        node = Node(len(self._nodes), op, args, name)
        self._nodes.append(node)
        self._cse[key] = node
        return node

    # -- declarations ----------------------------------------------------------
    def input(self, name: str) -> Node:
        """Declare (or fetch) the input node called *name*."""
        node = self._mk("in", (), name)
        if name not in self._inputs:
            self._inputs.append(name)
        return node

    def inputs(self, names) -> list[Node]:
        """Declare several inputs at once."""
        return [self.input(n) for n in names]

    def const(self, bit: int) -> Node:
        """The constant-0 or constant-1 node."""
        return self.one if bit else self.zero

    def output(self, name: str, node: Node) -> None:
        """Name *node* as a circuit output."""
        if name in self._outputs:
            raise SpecificationError(f"duplicate output name {name!r}")
        self._outputs[name] = node

    # -- gates (with constant folding) -------------------------------------------
    def xor(self, a: Node, b: Node) -> Node:
        """XOR gate (constant-folded, hash-consed)."""
        if a is b:
            return self.zero
        if a is self.zero:
            return b
        if b is self.zero:
            return a
        if a is self.one:
            return self.not_(b)
        if b is self.one:
            return self.not_(a)
        return self._mk("xor", (a.id, b.id))

    def and_(self, a: Node, b: Node) -> Node:
        """AND gate (constant-folded, hash-consed)."""
        if a is b:
            return a
        if a is self.zero or b is self.zero:
            return self.zero
        if a is self.one:
            return b
        if b is self.one:
            return a
        return self._mk("and", (a.id, b.id))

    def or_(self, a: Node, b: Node) -> Node:
        """OR gate (constant-folded, hash-consed)."""
        if a is b:
            return a
        if a is self.one or b is self.one:
            return self.one
        if a is self.zero:
            return b
        if b is self.zero:
            return a
        return self._mk("or", (a.id, b.id))

    def not_(self, a: Node) -> Node:
        """NOT gate (double negations cancel)."""
        if a is self.zero:
            return self.one
        if a is self.one:
            return self.zero
        if a.op == "not":
            return self._nodes[a.args[0]]
        return self._mk("not", (a.id,))

    def xor_many(self, nodes) -> Node:
        """XOR-reduce an iterable of nodes."""
        acc = self.zero
        for n in nodes:
            acc = self.xor(acc, n)
        return acc

    def and_many(self, nodes) -> Node:
        """AND-reduce an iterable of nodes."""
        acc = self.one
        for n in nodes:
            acc = self.and_(acc, n)
        return acc

    def mux(self, sel: Node, a: Node, b: Node) -> Node:
        """``a`` if sel else ``b`` — the branch-free bitsliced conditional."""
        return self.xor(b, self.and_(sel, self.xor(a, b)))

    def build(self) -> "Circuit":
        """Freeze the builder into an immutable :class:`Circuit`."""
        if not self._outputs:
            raise SpecificationError("circuit has no outputs")
        return Circuit(self._nodes, list(self._inputs), dict(self._outputs))


@dataclass
class Circuit:
    """An immutable gate DAG with named inputs/outputs."""

    nodes: list[Node]
    input_names: list[str]
    outputs: dict[str, Node]
    _live_order: list[Node] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        # Dead-code eliminate: keep only nodes reachable from outputs.
        live = set()
        stack = [n.id for n in self.outputs.values()]
        while stack:
            nid = stack.pop()
            if nid in live:
                continue
            live.add(nid)
            stack.extend(self.nodes[nid].args)
        self._live_order = [n for n in self.nodes if n.id in live or n.op == "in"]

    # -- introspection ----------------------------------------------------------
    def gate_counts(self) -> dict[str, int]:
        """Live gate counts by kind (inputs/constants excluded)."""
        counts = {"xor": 0, "and": 0, "or": 0, "not": 0}
        for n in self._live_order:
            if n.op in counts:
                counts[n.op] += 1
        counts["total"] = sum(counts.values())
        return counts

    def depth(self) -> int:
        """Longest input→output gate path (the circuit's critical path)."""
        depth = {}
        for n in self._live_order:
            if n.op in ("in", "const"):
                depth[n.id] = 0
            else:
                depth[n.id] = 1 + max(depth[self.nodes[a].id] for a in n.args)
        return max((depth[n.id] for n in self.outputs.values()), default=0)

    # -- evaluation -----------------------------------------------------------------
    def evaluate(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Vectorized evaluation; each input is a word array (any shape).

        Constants broadcast to the first input's shape and dtype.
        """
        missing = [n for n in self.input_names if n not in inputs]
        if missing:
            raise SpecificationError(f"missing circuit inputs: {missing}")
        sample = np.asarray(next(iter(inputs.values()))) if inputs else np.zeros(1, dtype=np.uint64)
        dtype = sample.dtype if sample.dtype.kind == "u" else np.dtype(np.uint64)
        ones = np.full(sample.shape, np.iinfo(dtype).max, dtype=dtype)
        zeros = np.zeros(sample.shape, dtype=dtype)
        vals: dict[int, np.ndarray] = {}
        for n in self._live_order:
            if n.op == "in":
                vals[n.id] = np.asarray(inputs[n.name], dtype=dtype)
            elif n.op == "const":
                vals[n.id] = ones if n.args[0] else zeros
            elif n.op == "xor":
                vals[n.id] = vals[n.args[0]] ^ vals[n.args[1]]
            elif n.op == "and":
                vals[n.id] = vals[n.args[0]] & vals[n.args[1]]
            elif n.op == "or":
                vals[n.id] = vals[n.args[0]] | vals[n.args[1]]
            elif n.op == "not":
                vals[n.id] = ~vals[n.args[0]]
            else:  # pragma: no cover - defensive
                raise SpecificationError(f"unknown op {n.op}")
        return {name: vals[node.id] for name, node in self.outputs.items()}

    def evaluate_bits(self, input_bits: dict[str, int]) -> dict[str, int]:
        """Scalar 0/1 evaluation (specification checks, tiny tests)."""
        arrays = {k: np.array([np.uint64(0xFFFFFFFFFFFFFFFF if v else 0)]) for k, v in input_bits.items()}
        out = self.evaluate(arrays)
        return {k: int(v[0] & np.uint64(1)) for k, v in out.items()}

    def compile(self):
        """Compile to a Python callable via the NumPy emitter.

        Returns ``f(**inputs) -> dict[str, ndarray]`` with no per-call IR
        walking — the form bitsliced kernels use in hot loops.
        """
        from repro.codegen.emit import emit_numpy

        src = emit_numpy(self, func_name="_generated")
        ns: dict = {"np": np}
        exec(src, ns)  # noqa: S102 - our own generated source
        return ns["_generated"]
