"""Cross-cutting quality gates: every registered generator must emit
statistically sound output, and injected implementation faults must be
caught by the quality instruments (the reason they exist)."""

import numpy as np
import pytest

from repro import BSRNG, available_algorithms
from repro.analysis import (
    autocorrelation,
    avalanche_profile,
    bias,
    key_avalanche,
    shannon_entropy_estimate,
)
from repro.nist import block_frequency_test, frequency_test, runs_test, serial_test

#: middlesquare/lcg/parkmiller/ca are historical baselines with known
#: statistical defects — they exist to lose benchmarks, not to pass NIST.
STRONG = [
    "mickey2",
    "grain",
    "trivium",
    "aes128ctr",
    "mt19937",
    "xorwow",
    "philox",
    "mrg32k3a",
    "chacha20",
    "rc4",
    "xorshift128plus",
]


class TestAllStrongGenerators:
    @pytest.mark.parametrize("alg", STRONG)
    def test_nist_spot_battery(self, alg):
        bits = BSRNG(alg, seed=0xD1CE, lanes=256).random_bits(100_000)
        for test in (frequency_test, block_frequency_test, runs_test, serial_test):
            r = test(bits)
            assert r.p_value >= 0.001, (alg, test.__name__, r.p_value)

    @pytest.mark.parametrize("alg", STRONG)
    def test_bias_and_entropy(self, alg):
        bits = BSRNG(alg, seed=7, lanes=256).random_bits(100_000)
        assert abs(bias(bits)) < 0.01, alg
        assert shannon_entropy_estimate(bits) > 0.99, alg

    @pytest.mark.parametrize("alg", STRONG)
    def test_autocorrelation_flat(self, alg):
        bits = BSRNG(alg, seed=5, lanes=256).random_bits(50_000)
        ac = autocorrelation(bits, max_lag=16)
        assert np.all(np.abs(ac) < 6 / np.sqrt(bits.size)), alg

    @pytest.mark.parametrize("alg", sorted(available_algorithms()))
    def test_seed_separation(self, alg):
        a = BSRNG(alg, seed=1, lanes=64).random_bytes(64)
        b = BSRNG(alg, seed=2, lanes=64).random_bytes(64)
        assert a != b, alg

    @pytest.mark.parametrize("alg", sorted(available_algorithms()))
    def test_reproducible(self, alg):
        a = BSRNG(alg, seed=9, lanes=64).random_bytes(64)
        b = BSRNG(alg, seed=9, lanes=64).random_bytes(64)
        assert a == b, alg


class TestFaultInjection:
    """Break a cipher on purpose; the instruments must notice.  These
    are the tripwires that stand in for the eSTREAM KAT files."""

    def test_wrong_grain_tap_breaks_avalanche_or_reference_match(self):
        from repro.ciphers.grain import GrainV1

        class BrokenGrain(GrainV1):
            def _shift(self, extra_feedback: int = 0) -> None:
                # drop the s[13] LFSR tap: the keystream still "looks"
                # random, but no longer matches the healthy cipher
                s, b = self.lfsr, self.nfsr
                fs = int(s[62]) ^ int(s[51]) ^ int(s[38]) ^ int(s[23]) ^ int(s[0])
                from repro.ciphers.grain import _g

                fb = int(s[0]) ^ _g(b)
                fs ^= extra_feedback
                fb ^= extra_feedback
                s[:-1] = s[1:]
                s[-1] = fs
                b[:-1] = b[1:]
                b[-1] = fb

        rng = np.random.default_rng(1)
        key = rng.integers(0, 2, 80, dtype=np.uint8)
        iv = rng.integers(0, 2, 64, dtype=np.uint8)
        healthy = GrainV1(key, iv).keystream(512)
        broken = BrokenGrain(key, iv).keystream(512)
        assert not np.array_equal(healthy, broken)

    def test_stuck_feedback_collapses_avalanche(self):
        # A cipher whose feedback ignores the key has zero diffusion.
        def stuck(key_bits):
            out = np.zeros(512, np.uint8)
            out[::7] = 1
            return out

        prof = avalanche_profile(key_avalanche(stuck, key_bits=80, n_flips=4))
        assert not prof["passed"]

    def test_duplicated_lane_seeding_detected(self):
        # §4.3's warned failure: lanes seeded identically.  The lane
        # correlation gate must fire.
        from repro.analysis import lane_correlation_matrix, max_abs_offdiag
        from repro.ciphers.trivium_bitsliced import BitslicedTrivium
        from repro.core.engine import BitslicedEngine

        bank = BitslicedTrivium(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        keys = np.tile(np.random.default_rng(2).integers(0, 2, 80, dtype=np.uint8), (8, 1))
        ivs = np.tile(np.random.default_rng(3).integers(0, 2, 80, dtype=np.uint8), (8, 1))
        bank.load(keys, ivs)  # identical key AND IV in every lane
        lanes = bank.keystream_bits(2048)
        assert max_abs_offdiag(lane_correlation_matrix(lanes)) == pytest.approx(1.0)

    def test_counter_reuse_detected(self):
        # CTR-mode catastrophic misuse: same key+nonce+counter block twice.
        from repro.ciphers.aes_bitsliced import BitslicedAESCTR
        from repro.core.engine import BitslicedEngine

        a = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        b = BitslicedAESCTR(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        a.load(np.arange(16, dtype=np.uint8), nonce=1, counter_start=0)
        b.load(np.arange(16, dtype=np.uint8), nonce=1, counter_start=0)
        assert np.array_equal(a.next_block_planes(), b.next_block_planes())

    def test_biased_stream_fails_battery(self):
        biased = (np.random.default_rng(4).random(100_000) < 0.51).astype(np.uint8)
        assert not frequency_test(biased).passed

    def test_short_period_fails_serial(self):
        stream = np.tile([1, 0, 1, 1, 0, 0], 20_000).astype(np.uint8)
        assert not serial_test(stream).passed


class TestWeakBaselinesAreWeak:
    """The historical baselines are in the registry to be bad — make sure
    they stay bad (a middle-square that passes NIST is a bug)."""

    def test_middlesquare_or_lcg_fail_something(self):
        failures = 0
        for alg in ("middlesquare", "lcg", "parkmiller", "ca"):
            bits = BSRNG(alg, seed=1, lanes=64).random_bits(100_000)
            results = [frequency_test(bits), runs_test(bits), serial_test(bits)]
            failures += any(not r.passed for r in results)
        assert failures >= 1
