"""RNG-as-a-service: lease-partitioned streaming daemon over BSRNG.

The subsystem has three layers (see ``DESIGN.md`` §12):

* :mod:`repro.serve.leases` — counter-space allocation: every client
  gets a deterministic, never-reissued ``[offset, offset+length)``
  slice of the one logical stream, journaled for crash-safe resume.
* :mod:`repro.serve.engine` — a persistent supervised worker pool that
  turns ``(offset, n)`` into bytes: per-chunk timeout/retry/CRC policy
  from :mod:`repro.robust.supervisor`, SP 800-90B output screening from
  :mod:`repro.robust.health`, inline degrade when the pool is exhausted.
* :mod:`repro.serve.daemon` — the asyncio HTTP front end: streaming
  responses with bounded-queue backpressure, ``/healthz`` gating,
  ``/metrics`` exposition, graceful SIGTERM drain.

Client-side, :mod:`repro.serve.loadgen` provides the async load
generator behind ``benchmarks/bench_serve_load.py``.
"""

from repro.serve.daemon import DaemonConfig, ServeDaemon, build_daemon
from repro.serve.engine import EngineStats, HealthState, ServeEngine, StreamConfig
from repro.serve.leases import Lease, LeaseManager
from repro.serve.loadgen import LoadResult, run_load

__all__ = [
    "LoadResult",
    "run_load",
    "DaemonConfig",
    "ServeDaemon",
    "build_daemon",
    "EngineStats",
    "HealthState",
    "ServeEngine",
    "StreamConfig",
    "Lease",
    "LeaseManager",
]
