#!/usr/bin/env python
"""Elastic fleet benchmark: supervised scale-out cost and chaos retention.

Three timed runs over the same deterministic stream:

* **inline** — a single :class:`RangeSource` front, the zero-overhead
  reference every fleet result must match bit for bit;
* **fleet** — a clean ``workers``-member fleet (heartbeats, CRC
  receipts, per-worker screens all on): what membership supervision
  costs on this box;
* **chaos** — the same fleet with a scripted ``REPRO_FAULT_PLAN``-style
  plan killing one member mid-stream and slow-bleeding another until it
  strikes out: what eviction + lease reassignment costs.

Two regression-gated ratios, both run-vs-run on the same machine so they
transfer across runners the way ``serve_load``'s scaling ratio does:

* ``fleet_efficiency``   = fleet Gbit/s / inline Gbit/s.  On a
  single-core runner this sits below 1 (supervision and IPC can only add
  overhead there); the committed baseline encodes that floor and the
  gate catches drops — a chattier protocol or a serialization bug lands
  well under it.
* ``chaos_retention``    = chaos Gbit/s / clean-fleet Gbit/s.  Eviction
  detection is deadline-bound, so retention is a property of the
  controller's drain/reassign path, not of absolute CPU speed.

The bench *asserts* the robustness invariants rather than merely timing
them: every run must be bit-identical to the inline reference, the chaos
run must actually evict both saboteurs, and the controller's lease space
must account for every dispatched byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_elastic.py
    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_fleet_elastic.json \
        benchmarks/baselines/BENCH_fleet_elastic.json --tolerance 0.4
"""

from __future__ import annotations

import argparse
import math
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _emit import emit_bench  # noqa: E402

from repro.fleet import FleetConfig, FleetController  # noqa: E402
from repro.robust.faults import Fault, FaultPlan  # noqa: E402
from repro.serve.engine import RangeSource, StreamConfig  # noqa: E402


def run_inline(stream: StreamConfig, n_bytes: int) -> tuple[bytes, float]:
    source = RangeSource(stream)
    t0 = time.perf_counter()
    data = source.read_range(0, n_bytes)
    return data, time.perf_counter() - t0


def run_fleet(
    stream: StreamConfig,
    n_bytes: int,
    config: FleetConfig,
    plan: FaultPlan | None = None,
) -> tuple[bytes, float, dict]:
    controller = FleetController(stream, config, fault_plan=plan)
    controller.start(supervise=True)
    try:
        t0 = time.perf_counter()
        data = controller.read_range(0, n_bytes)
        wall = time.perf_counter() - t0
        status = controller.status()
    finally:
        controller.close()
    return data, wall, status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-a", "--algorithm", default="trivium")
    parser.add_argument("-l", "--lanes", type=int, default=4096)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--mbytes", type=int, default=8, help="payload size (MiB)")
    parser.add_argument("--chunk-kib", type=int, default=256, help="lease chunk (KiB)")
    args = parser.parse_args(argv)

    n_bytes = args.mbytes << 20
    chunk_bytes = args.chunk_kib << 10
    stream = StreamConfig(algorithm=args.algorithm, seed=13, lanes=args.lanes)
    config = FleetConfig(
        workers=args.workers,
        max_workers=args.workers * 2,
        heartbeat_interval=0.25,
        heartbeat_timeout=5.0,
        chunk_bytes=chunk_bytes,
        max_strikes=2,
        scale_up_backlog=1000,  # fixed membership: measure supervision, not growth
    )
    n_chunks = math.ceil(n_bytes / chunk_bytes)
    plan = FaultPlan(
        faults=(
            # one member dies a third of the way in ...
            Fault("crash", partition=0, attempt=max(1, n_chunks // (3 * args.workers))),
            # ... another starts flipping bytes on every payload
            Fault("slow_bleed", partition=1, attempt=max(1, n_chunks // (2 * args.workers)),
                  corrupt_bytes=2),
        ),
        seed=17,
    )

    print(
        f"fleet elastic bench: {args.workers} workers x {args.algorithm} "
        f"(lanes={args.lanes}), {n_bytes >> 20} MiB in {args.chunk_kib} KiB leases"
    )

    reference, inline_wall = run_inline(stream, n_bytes)
    inline_gbps = n_bytes * 8 / inline_wall / 1e9
    print(f"  inline reference: {inline_wall:.3f}s ({inline_gbps:.3f} Gbit/s)")

    clean, clean_wall, clean_status = run_fleet(stream, n_bytes, config)
    assert clean == reference, "clean fleet merge is not bit-identical"
    assert clean_status["counters"]["evictions"] == 0, "clean run must not evict"
    clean_gbps = n_bytes * 8 / clean_wall / 1e9
    print(f"  clean fleet:      {clean_wall:.3f}s ({clean_gbps:.3f} Gbit/s)")

    chaos, chaos_wall, chaos_status = run_fleet(stream, n_bytes, config, plan)
    assert chaos == reference, "chaos fleet merge is not bit-identical"
    counters = chaos_status["counters"]
    assert counters["evictions"] >= 2, (
        f"chaos drill must evict both saboteurs, saw {counters['evictions']}"
    )
    assert chaos_status["leases"]["high_water_bytes"] >= n_bytes, (
        "lease space must account for every dispatched byte"
    )
    chaos_gbps = n_bytes * 8 / chaos_wall / 1e9
    print(
        f"  chaos fleet:      {chaos_wall:.3f}s ({chaos_gbps:.3f} Gbit/s), "
        f"{counters['evictions']} evictions, "
        f"{counters['reassignments']} leases reassigned, "
        f"{counters['stale_results']} stale results dropped"
    )

    fleet_efficiency = clean_gbps / inline_gbps
    chaos_retention = chaos_gbps / clean_gbps
    geomean = math.sqrt(fleet_efficiency * chaos_retention)
    print(
        f"  fleet efficiency: {fleet_efficiency:.3f}x inline, "
        f"chaos retention: {chaos_retention:.3f}x clean"
    )

    emit_bench(
        "fleet_elastic",
        params={
            "algorithm": args.algorithm,
            "lanes": args.lanes,
            "workers": args.workers,
            "n_bytes": n_bytes,
            "chunk_bytes": chunk_bytes,
            "cpu_count": os.cpu_count(),
        },
        gbps=clean_gbps,
        wall_s=clean_wall,
        metrics={
            "inline_gbps": inline_gbps,
            "clean_gbps": clean_gbps,
            "chaos_gbps": chaos_gbps,
            "chaos_evictions": counters["evictions"],
            "chaos_reassignments": counters["reassignments"],
            "chaos_stale_results": counters["stale_results"],
            "speedup": {
                "fleet_efficiency": fleet_efficiency,
                "chaos_retention": chaos_retention,
            },
            "geomean_speedup": geomean,
        },
    )
    print("  wrote benchmarks/results/BENCH_fleet_elastic.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
