"""E2 — Table 2: specification of the GPU evaluation platforms.

Dumps the catalogue exactly in the paper's three columns, plus the SM
resources the occupancy model uses on top of them.
"""

from _emit import emit_bench
from conftest import emit_table

from repro.gpu.launch import occupancy
from repro.gpu.specs import TABLE2_GPUS


def render_table2() -> list[str]:
    lines = [
        f"{'GPU':<14}{'SP GFlops':>12}{'DP GFlops':>12}{'Mem BW GB/s':>13}{'SMs':>5}{'occ@210regs':>13}",
        "-" * 69,
    ]
    for g in TABLE2_GPUS.values():
        occ = occupancy(g, registers_per_thread=210)
        lines.append(
            f"{g.name:<14}{g.sp_gflops:>12.0f}{g.dp_gflops:>12.0f}{g.mem_bw_gbs:>13.0f}"
            f"{g.sm_count:>5}{occ:>13.3f}"
        )
    return lines


def test_table2_gpu_specs(benchmark):
    lines = benchmark(render_table2)
    emit_table("table2_gpu_specs", lines)
    emit_bench(
        "table2_gpu_specs",
        metrics={
            "occupancy_at_210_regs": {
                g.name: occupancy(g, registers_per_thread=210)
                for g in TABLE2_GPUS.values()
            }
        },
    )
    assert len(lines) == 2 + 6  # header + the paper's six platforms
