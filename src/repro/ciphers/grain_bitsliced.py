"""Bitsliced Grain v1 over the virtual SIMD engine.

State is 160 planes (80 LFSR + 80 NFSR).  Both registers shift in
lockstep every clock — in plane form that's two vectorized row moves plus
one feedback write each — and the nonlinear feedback ``g`` and filter
``h`` become flat AND/XOR networks over plane rows, the "light-weighted
architecture … great nominee for the bit-sliced implementation" of
§2.3.3.

Cross-validated lane-by-lane against :class:`repro.ciphers.grain.GrainV1`.
"""

from __future__ import annotations

import numpy as np

from repro.bitio.bits import as_bit_array
from repro.ciphers.grain import INIT_CLOCKS, IV_BITS, KEY_BITS, LFSR_TAPS, OUTPUT_TAPS, STATE_BITS
from repro.core.bitslice import bitslice, unbitslice
from repro.core.engine import BitslicedEngine
from repro.core.seeding import derive_lane_material
from repro.errors import KeyScheduleError

__all__ = ["BitslicedGrain"]

# Gate counts of one bank clock (z + g + f + shifts), per lane.  The ANDs
# in g/h are counted per 2-input gate of the flattened products.
_GATES_PER_CLOCK = {
    "xor": (len(OUTPUT_TAPS) + 9)  # z mask + h xors
    + (len(LFSR_TAPS) - 1)  # f
    + 12  # g linear part (11 taps + s_0)
    + 10  # g nonlinear accumulate
    + 2,  # feedback merge
    "and_": 8 + (1 + 1 + 1 + 2 + 2 + 3 + 3 + 3 + 4 + 4 + 5),  # h products + g products
    "or_": 0,
    "not_": 0,
}


class BitslicedGrain:
    """A bank of ``engine.n_lanes`` independent Grain v1 generators."""

    name = "grain"
    key_bits = KEY_BITS
    iv_bits = IV_BITS
    state_bits = 2 * STATE_BITS

    def __init__(self, engine: BitslicedEngine | None = None) -> None:
        self.engine = engine if engine is not None else BitslicedEngine()
        nw, dt = self.engine.n_words, self.engine.dtype
        self.s = np.zeros((STATE_BITS, nw), dtype=dt)  # LFSR planes
        self.b = np.zeros((STATE_BITS, nw), dtype=dt)  # NFSR planes
        self._loaded = False

    # -- loading -------------------------------------------------------------
    def load(self, keys, ivs) -> None:
        """Load ``(n_lanes, 80)`` keys and ``(n_lanes, 64)`` IVs, then init."""
        keys = as_bit_array(keys)
        ivs = as_bit_array(ivs)
        n_lanes = self.engine.n_lanes
        if keys.shape != (n_lanes, KEY_BITS):
            raise KeyScheduleError(f"keys must be ({n_lanes}, {KEY_BITS}), got {keys.shape}")
        if ivs.shape != (n_lanes, IV_BITS):
            raise KeyScheduleError(f"ivs must be ({n_lanes}, {IV_BITS}), got {ivs.shape}")
        dt = self.engine.dtype
        self.b[:] = bitslice(keys, dtype=dt)
        iv_planes = bitslice(ivs, dtype=dt)
        self.s[:IV_BITS] = iv_planes
        self.s[IV_BITS:] = np.iinfo(dt).max
        for _ in range(INIT_CLOCKS):
            z = self._output_plane()
            self._shift(extra_feedback=z)
        self._loaded = True

    def seed(self, seed: int, *, shared_key: bool = True, lane_offset: int = 0) -> "BitslicedGrain":
        """Derive per-lane key/IV material from one integer seed."""
        keys, ivs = derive_lane_material(
            seed,
            self.engine.n_lanes,
            key_bits=KEY_BITS,
            iv_bits=IV_BITS,
            shared_key=shared_key,
            lane_offset=lane_offset,
        )
        self.load(keys, ivs)
        return self

    # -- one bank clock ---------------------------------------------------------
    def _output_plane(self) -> np.ndarray:
        s, b = self.s, self.b
        x0, x1, x2, x3, x4 = s[3], s[25], s[46], s[64], b[63]
        x02 = x0 & x2
        z = (
            x1
            ^ x4
            ^ (x0 & x3)
            ^ (x2 & x3)
            ^ (x3 & x4)
            ^ (x02 & x1)
            ^ (x02 & x3)
            ^ (x02 & x4)
            ^ (x1 & x2 & x4)
            ^ (x2 & x3 & x4)
        )
        for k in OUTPUT_TAPS:
            z = z ^ b[k]
        return z

    def _g_plane(self) -> np.ndarray:
        b = self.b
        t6052 = b[60] & b[52]
        t3328 = b[33] & b[28]
        t6360 = b[63] & b[60]
        lin = b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33] ^ b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]
        non = (
            t6360
            ^ (b[37] & b[33])
            ^ (b[15] & b[9])
            ^ (t6052 & b[45])
            ^ (t3328 & b[21])
            ^ (b[63] & b[45] & b[28] & b[9])
            ^ (t6052 & b[37] & b[33])
            ^ (t6360 & b[21] & b[15])
            ^ (t6052 & t6360 & b[45] & b[37])
            ^ (t3328 & b[21] & b[15] & b[9])
            ^ (b[52] & b[45] & b[37] & t3328 & b[21])
        )
        return lin ^ non

    def _shift(self, extra_feedback: np.ndarray | None = None) -> None:
        s, b = self.s, self.b
        fs = s[LFSR_TAPS[0]].copy()
        for t in LFSR_TAPS[1:]:
            fs ^= s[t]
        fb = s[0] ^ self._g_plane()
        if extra_feedback is not None:
            fs ^= extra_feedback
            fb ^= extra_feedback
        s[:-1] = s[1:]
        s[-1] = fs
        b[:-1] = b[1:]
        b[-1] = fb
        for kind, n in _GATES_PER_CLOCK.items():
            if n:
                self.engine.counter.add(kind, n)

    # -- keystream --------------------------------------------------------------
    def _require_loaded(self) -> None:
        if not self._loaded:
            raise KeyScheduleError("cipher bank must be loaded/seeded before generating")

    def next_planes(
        self, n_rows: int, *, out: np.ndarray | None = None, epilogue=None
    ) -> np.ndarray:
        """Emit ``(n_rows, n_words)`` keystream planes via the staging buffer.

        With ``engine.fused`` the rows come from the compiled K-clock
        kernel (bit-identical stream, same gate accounting).  An explicit
        *out* array/view is filled in place and returned.  *epilogue*
        (the single-touch hook) sees every emitted row exactly once, in
        stream order — per K-clock block on the fused path, one call on
        the interpreter path.
        """
        self._require_loaded()
        if out is None:
            out = np.empty((n_rows, self.engine.n_words), dtype=self.engine.dtype)
        if getattr(self.engine, "fused", False):
            from repro.codegen.fused import fused_generate

            fused_generate(self, "grain", n_rows, out, epilogue=epilogue)
            for kind, n in _GATES_PER_CLOCK.items():
                if n:
                    self.engine.counter.add(kind, n * n_rows)
            return out
        stage = self.engine.make_stage()
        row = 0
        for _ in range(n_rows):
            z = self._output_plane()
            self._shift()
            row = stage.push(z, out, row)
        stage.drain(out, row)
        if epilogue is not None:
            epilogue(out[:n_rows])
        return out

    def keystream_bits(self, n_bits: int) -> np.ndarray:
        """Per-lane keystream: ``(n_lanes, n_bits)`` bit matrix."""
        return unbitslice(self.next_planes(n_bits), self.engine.n_lanes)

    def gates_per_output_bit(self) -> float:
        """Logic gates per keystream bit per lane (feeds the GPU model)."""
        g = _GATES_PER_CLOCK
        return float(g["xor"] + g["and_"] + g["or_"] + g["not_"])
