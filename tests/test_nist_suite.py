"""Suite-level aggregation: proportion band, uniformity chi-square,
skip handling and the Table-3-style report."""

import math

import numpy as np
import pytest
from scipy.special import gammaincc

from repro.errors import InsufficientDataError, SpecificationError
from repro.nist import ALL_TESTS, SuiteReport, run_suite, summarize_pvalues
from repro.nist.result import ALPHA
from repro.nist.result import TestResult as NistResult


class TestResultSemantics:
    def test_p_value_is_minimum(self):
        r = NistResult("t", [0.9, 0.3, 0.5])
        assert r.p_value == 0.3

    def test_clipping(self):
        r = NistResult("t", [1.5, -0.1])
        assert r.p_values == [1.0, 0.0]

    def test_pass_threshold(self):
        assert NistResult("t", [ALPHA]).passed
        assert not NistResult("t", [ALPHA / 2]).passed


class TestSummarize:
    def test_proportion_and_band(self):
        ps = [0.5] * 95 + [0.001] * 5
        out = summarize_pvalues(ps)
        assert out["proportion"] == pytest.approx(0.95)
        band = 3.0 * math.sqrt(ALPHA * (1 - ALPHA) / 100)
        assert out["proportion_low"] == pytest.approx(0.99 - band)
        # 95% passing with a band around 0.96 lower limit: fails.
        assert not out["proportion_ok"]

    def test_uniformity_chi2(self):
        # Exactly 10 p-values per decile: chi2 = 0, uniformity p = 1.
        ps = np.concatenate([np.full(10, (i + 0.5) / 10) for i in range(10)])
        out = summarize_pvalues(ps)
        assert out["uniformity_p"] == pytest.approx(1.0)
        assert out["uniformity_ok"]

    def test_uniformity_detects_clumping(self):
        out = summarize_pvalues([0.55] * 1000)
        assert out["uniformity_p"] < 1e-4
        assert not out["uniformity_ok"]

    def test_uniformity_matches_igamc(self):
        rng = np.random.default_rng(3)
        ps = rng.random(200)
        out = summarize_pvalues(ps)
        counts, _ = np.histogram(ps, bins=10, range=(0, 1))
        chi2 = float(np.sum((counts - 20.0) ** 2 / 20.0))
        assert out["uniformity_p"] == pytest.approx(float(gammaincc(4.5, chi2 / 2.0)))

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            summarize_pvalues([])

    def test_single_sample_uniformity_not_applicable(self):
        # the docstring demands >= 2 samples for the chi-square; with one
        # sample it must report not-applicable, never a fabricated p-value
        out = summarize_pvalues([0.5])
        assert out["n_sequences"] == 1
        assert out["uniformity_p"] is None
        assert out["uniformity_ok"] is None
        assert out["proportion_ok"]

    def test_proportion_low_clamped_at_zero(self):
        # wide alpha + tiny s used to drive the lower band edge negative
        # while the upper edge was clamped at 1.0
        out = summarize_pvalues([0.6], alpha=0.5)
        assert out["proportion_low"] == 0.0
        assert out["proportion_high"] == 1.0

    def test_single_sample_row_renders_and_passes(self):
        rep = SuiteReport(1, 100)
        rep.per_test["X"] = summarize_pvalues([0.5])
        assert "n/a" in rep.to_table()
        assert rep.all_passed  # proportion criterion decides when chi2 is n/a


class TestRunSuite:
    @pytest.fixture(scope="class")
    def report(self):
        rng = np.random.default_rng(0xC0FFEE)
        seqs = [rng.integers(0, 2, 20_000, dtype=np.uint8) for _ in range(8)]
        fast = {
            k: v
            for k, v in ALL_TESTS.items()
            if k in ("Frequency", "BlockFrequency", "Runs", "CumulativeSums", "Serial")
        }
        return run_suite(seqs, n_sequences=len(seqs), tests=fast)

    def test_all_tests_reported(self, report):
        assert set(report.per_test) == {
            "Frequency",
            "BlockFrequency",
            "Runs",
            "CumulativeSums",
            "Serial",
        }
        assert report.n_sequences == 8
        assert report.n_bits == 20_000

    def test_good_source_passes_proportion(self, report):
        for row in report.per_test.values():
            assert row["proportion_ok"]

    def test_callable_source(self):
        rng = np.random.default_rng(1)
        seqs = [rng.integers(0, 2, 1000, dtype=np.uint8) for _ in range(4)]
        rep = run_suite(lambda i: seqs[i], 4, tests={"Frequency": ALL_TESTS["Frequency"]})
        assert rep.per_test["Frequency"]["n_sequences"] == 4

    def test_short_sequences_are_skipped_not_failed(self):
        seqs = [np.random.default_rng(i).integers(0, 2, 200, dtype=np.uint8) for i in range(3)]
        rep = run_suite(
            seqs, 3, tests={"Frequency": ALL_TESTS["Frequency"], "FFT": ALL_TESTS["FFT"]}
        )
        assert "FFT" in rep.skipped  # needs 1000 bits
        assert "Frequency" in rep.per_test

    def test_to_table_format(self, report):
        table = report.to_table()
        assert "Frequency" in table
        assert "Success" in table or "FAILURE" in table
        assert table.count("\n") >= len(report.per_test) + 1

    def test_all_passed_flag(self):
        good = SuiteReport(1, 100)
        good.per_test["X"] = {"proportion_ok": True, "uniformity_ok": True, "proportion": 1.0, "uniformity_p": 0.5}
        assert good.all_passed
        good.per_test["Y"] = {"proportion_ok": False, "uniformity_ok": True, "proportion": 0.5, "uniformity_p": 0.5}
        assert not good.all_passed

    def test_biased_source_fails(self):
        rng = np.random.default_rng(5)
        seqs = [(rng.random(5000) < 0.55).astype(np.uint8) for _ in range(6)]
        rep = run_suite(seqs, 6, tests={"Frequency": ALL_TESTS["Frequency"]})
        assert not rep.all_passed

    def test_all_skipped_battery_is_not_a_pass(self):
        # a battery that ran nothing must not report success
        assert not SuiteReport(1, 100).all_passed
        seqs = [np.random.default_rng(i).integers(0, 2, 200, dtype=np.uint8) for i in range(3)]
        rep = run_suite(seqs, 3, tests={"FFT": ALL_TESTS["FFT"]})  # needs 1000 bits
        assert rep.skipped and not rep.per_test
        assert not rep.all_passed

    def test_partial_insufficient_data_is_counted_and_flagged(self):
        # a test that drops only *some* sequences must surface the loss
        calls = {"n": 0}

        def flaky(bits):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise InsufficientDataError("every other sequence is too thin")
            return NistResult("flaky", [0.5])

        seqs = [np.random.default_rng(i).integers(0, 2, 1000, dtype=np.uint8) for i in range(4)]
        rep = run_suite(seqs, 4, tests={"Flaky": flaky, "Frequency": ALL_TESTS["Frequency"]})
        assert rep.errors == {"Flaky": 2}
        assert rep.per_test["Flaky"]["n_sequences"] == 2  # partial aggregation
        assert "Frequency" not in rep.errors
        assert "[dropped 2/4 seqs]" in rep.to_table()

    def test_mixed_length_sequences_raise(self):
        rng = np.random.default_rng(9)
        seqs = [
            rng.integers(0, 2, 1000, dtype=np.uint8),
            rng.integers(0, 2, 1500, dtype=np.uint8),
        ]
        with pytest.raises(SpecificationError, match="1500 bits, expected 1000"):
            run_suite(seqs, 2, tests={"Frequency": ALL_TESTS["Frequency"]})


class TestTable3Workflow:
    """The paper's Table 3 pipeline on CI-scaled inputs."""

    def test_mickey_battery_small(self):
        from repro.core.generator import BSRNG

        rng = BSRNG("mickey2", seed=2020, lanes=256)
        seqs = [rng.random_bits(20_000) for _ in range(10)]
        fast = {
            k: ALL_TESTS[k]
            for k in ("Frequency", "BlockFrequency", "Runs", "CumulativeSums", "Serial", "ApproximateEntropy")
        }
        rep = run_suite(seqs, len(seqs), tests=fast)
        # At 10 sequences the NIST band is all-or-nothing per test, which
        # flakes at the ~2% level (Serial's scalar is a min of two
        # p-values); assert the battery-wide behaviour instead: no test may
        # lose more than one sequence, and uniformity must hold everywhere.
        for name, row in rep.per_test.items():
            assert row["proportion"] >= 0.9, f"{name} failed: {row}"
            assert row["uniformity_ok"], f"{name} clumped: {row}"
