"""E9 — §4.5: shared-memory staging and coalesced writes.

Model side: the staging-efficiency and coalescing curves the roofline
charges the output path with (the paper tunes the staging size "by
simple try and error" and reports gains from both techniques).

Measured side: the software analogue — keystream planes pushed through
the engine's staging buffer and flushed in bulk, vs written one row at a
time to scattered (strided) destinations.
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table, measure_gbps

from repro.core.engine import BitslicedEngine
from repro.gpu.memory import coalescing_efficiency, effective_write_bw, staging_efficiency

LANES = 1 << 14 if FULL_SCALE else 1 << 13
ROWS = 2048


def test_staging_model_sweep(benchmark):
    sizes = [256, 1024, 4096, 8192, 16384, 65536]
    lines = [f"{'stage bytes':>12}{'staging eff':>13}{'write BW (V100, GB/s)':>23}", "-" * 48]
    for s in sizes:
        lines.append(
            f"{s:>12}{staging_efficiency(s):>13.4f}{effective_write_bw(900.0, stage_bytes=s):>23.1f}"
        )
    emit_table("ablation_staging_model", lines)
    emit_bench(
        "ablation_staging_model",
        params={"stage_bytes": sizes},
        metrics={"staging_eff": {str(s): staging_efficiency(s) for s in sizes}},
    )
    benchmark.pedantic(lambda: [effective_write_bw(900.0, stage_bytes=s) for s in sizes], rounds=3, iterations=1)

    # Monotone rising with diminishing returns — the paper's try-and-error
    # plateau.
    effs = [staging_efficiency(s) for s in sizes]
    assert effs == sorted(effs)
    assert effs[-1] - effs[-2] < effs[1] - effs[0]


def test_coalescing_model_sweep(benchmark):
    strides = [1, 2, 4, 8, 16, 32]
    lines = [f"{'stride (words)':>15}{'coalescing eff':>16}", "-" * 31]
    for s in strides:
        lines.append(f"{s:>15}{coalescing_efficiency(s):>16.4f}")
    emit_table("ablation_coalescing_model", lines)
    emit_bench(
        "ablation_coalescing_model",
        params={"strides": strides},
        metrics={"coalescing_eff": {str(s): coalescing_efficiency(s) for s in strides}},
    )
    benchmark.pedantic(lambda: [coalescing_efficiency(s) for s in strides], rounds=3, iterations=1)
    effs = [coalescing_efficiency(s) for s in strides]
    assert effs[0] == 1.0 and effs == sorted(effs, reverse=True)


def test_staged_vs_scattered_writes(benchmark):
    """Software analogue: bulk flushes vs per-row strided writes."""
    engine = BitslicedEngine(n_lanes=LANES, stage_rows=256)
    n_words = engine.n_words
    src = np.random.default_rng(0).integers(0, 1 << 63, (ROWS, n_words), dtype=np.uint64)

    def staged():
        dest = np.empty((ROWS, n_words), dtype=np.uint64)
        stage = engine.make_stage()
        row = 0
        for i in range(ROWS):
            row = stage.push(src[i], dest, row)
        stage.drain(dest, row)
        return dest

    def scattered():
        # row i of lane block j lands at stride: the uncoalesced pattern —
        # each row write hits a strided (non-contiguous) destination view.
        dest = np.empty((n_words, ROWS), dtype=np.uint64)  # transposed layout
        for i in range(ROWS):
            dest[:, i] = src[i]
        return dest.T

    bits = ROWS * LANES
    staged_gbps = measure_gbps(staged, bits, repeat=2)
    scattered_gbps = measure_gbps(scattered, bits, repeat=2)

    out_a, out_b = staged(), scattered()
    assert np.array_equal(out_a, out_b)

    lines = [
        f"{'write path':<30}{'Gbit/s':>10}",
        "-" * 40,
        f"{'staged + bulk flush':<30}{staged_gbps:>10.2f}",
        f"{'scattered (strided dest)':<30}{scattered_gbps:>10.2f}",
        "",
        f"staging advantage: {staged_gbps / scattered_gbps:.2f}x",
    ]
    emit_table("ablation_memory_measured", lines)
    emit_bench(
        "ablation_memory_measured",
        params={"lanes": LANES, "rows": ROWS, "stage_rows": 256},
        gbps=staged_gbps,
        metrics={
            "scattered_gbps": scattered_gbps,
            "advantage": staged_gbps / scattered_gbps,
        },
    )
    benchmark.extra_info["advantage"] = round(staged_gbps / scattered_gbps, 2)
    benchmark.pedantic(staged, rounds=1, iterations=1)

    assert staged_gbps > scattered_gbps
