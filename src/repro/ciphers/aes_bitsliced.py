"""Bitsliced AES-128-CTR over the virtual SIMD engine.

The cipher state becomes 128 planes — byte ``i`` (FIPS order, ``i = 4*col
+ row``), bit ``b`` — each holding that bit for every lane.  The four
round operations map onto the bitsliced representation as the paper
sketches (§2.3.2):

* **SubBytes** — the only nonlinear step — runs a gate circuit
  *synthesized from the S-box truth table* (ANF + shared monomials,
  :mod:`repro.codegen.anf`), evaluated across all 16 bytes and all lanes
  at once.  Its large gate count is precisely why the paper's AES trails
  the stream ciphers ("the complex bitsliced S-box", §5.2) — our model
  reads that gate count straight from this circuit.
* **ShiftRows** — a pure byte-plane permutation (register renaming).
* **MixColumns** — xtime at bit level: 4 XORs per byte (the ``0x1B``
  reduction), no table lookups.
* **AddRoundKey** — key bits are lane-constant in CTR mode, so the round
  key degenerates to conditional complement of plane rows.

Counter mode: lane ``j`` of batch ``t`` encrypts ``nonce64 || (base +
j + t * n_lanes)`` — the same keyspace partitioning the paper's
multi-GPU §5.4 splits across devices.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.aes import AES128, SBOX, _coerce_key
from repro.codegen.anf import circuit_from_truth_tables, sbox_truth_tables
from repro.core.bitslice import bitslice_bytes, unbitslice_bytes
from repro.core.engine import BitslicedEngine
from repro.core.seeding import expand_seed_words
from repro.errors import KeyScheduleError, SpecificationError

__all__ = ["BitslicedAESCTR", "sbox_circuit"]

_SBOX_CACHE: dict = {}


def sbox_circuit():
    """The synthesized AES S-box circuit (cached; built on first use)."""
    if "circuit" not in _SBOX_CACHE:
        circuit = circuit_from_truth_tables(
            sbox_truth_tables(SBOX),
            input_names=[f"x{i}" for i in range(8)],
            output_names=[f"y{i}" for i in range(8)],
        )
        _SBOX_CACHE["circuit"] = circuit
        _SBOX_CACHE["compiled"] = circuit.compile()
    return _SBOX_CACHE["circuit"]


def _sbox_compiled():
    sbox_circuit()
    return _SBOX_CACHE["compiled"]


# ShiftRows byte-plane permutation: new[4c + r] = old[4((c + r) % 4) + r].
_SHIFT_ROWS_PERM = np.array([4 * ((c + r) % 4) + r for c in range(4) for r in range(4)])


def _xtime_planes(u: np.ndarray) -> np.ndarray:
    """GF(2^8) multiply-by-2 on a (..., 8, n_words) plane stack."""
    v = np.empty_like(u)
    hi = u[..., 7, :]
    v[..., 0, :] = hi
    v[..., 1, :] = u[..., 0, :] ^ hi
    v[..., 2, :] = u[..., 1, :]
    v[..., 3, :] = u[..., 2, :] ^ hi
    v[..., 4, :] = u[..., 3, :] ^ hi
    v[..., 5, :] = u[..., 4, :]
    v[..., 6, :] = u[..., 5, :]
    v[..., 7, :] = u[..., 6, :]
    return v


class BitslicedAESCTR:
    """A bank of ``engine.n_lanes`` AES-128-CTR keystream generators.

    All lanes share one key (CTR security rests on distinct counters);
    lane separation comes from the counter value itself.
    """

    name = "aes128ctr"
    key_bits = 128
    iv_bits = 64
    state_bits = 128
    #: Keystream rows come in whole CTR batches of 128 planes; callers
    #: that preallocate output (the threaded lane bank) round up to this.
    rows_granularity = 128

    def __init__(self, engine: BitslicedEngine | None = None) -> None:
        self.engine = engine if engine is not None else BitslicedEngine()
        self._sbox = _sbox_compiled()
        self._sbox_gates = sbox_circuit().gate_counts()
        self._key_loaded = False
        self._nonce = np.uint64(0)
        self._counter_base = np.uint64(0)
        self._counter_stride = np.uint64(self.engine.n_lanes)
        self._blocks_done = 0

    # -- loading ------------------------------------------------------------
    def load(self, key, nonce: int = 0, counter_start: int = 0) -> None:
        """Set the shared key, the 64-bit nonce and the counter origin."""
        key = _coerce_key(key)
        rks = AES128._expand_key(key)  # (11, 16) bytes
        # Precompute per-round boolean masks of which (byte, bit) planes flip.
        self._rk_masks = [
            np.unpackbits(rk.reshape(16, 1), axis=1, bitorder="little").astype(bool)
            for rk in rks
        ]
        self._nonce = np.uint64(nonce & 0xFFFFFFFFFFFFFFFF)
        self._counter_base = np.uint64(counter_start & 0xFFFFFFFFFFFFFFFF)
        self._counter_stride = np.uint64(self.engine.n_lanes)
        self._blocks_done = 0
        self._key_loaded = True
        # Fused-kernel contexts embed the round-key flip indices, which
        # just changed — drop them so the next fused call rebuilds.
        self._fused_ctx = {}

    def seed(
        self,
        seed: int,
        *,
        shared_key: bool = True,
        lane_offset: int = 0,
        counter_stride: int | None = None,
    ) -> "BitslicedAESCTR":
        """Derive key and nonce from one integer seed.

        All lanes always share the key (CTR security rests on distinct
        counters; ``shared_key`` exists for interface parity with the
        LFSR banks).  ``lane_offset`` shifts this bank's counter window
        so lane ``i`` equals lane ``lane_offset + i`` of a wider bank,
        and ``counter_stride`` sets the counter advance per batch — a
        column-split sub-bank passes the *full* bank's lane count so its
        batches interleave exactly like the full bank's (§5.4's counter
        partitioning applied inside one process).
        """
        if not shared_key:
            raise SpecificationError("AES-CTR lanes always share the key")
        if lane_offset < 0:
            raise SpecificationError("lane_offset must be non-negative")
        words = expand_seed_words(seed, 3, stream=3)
        key_bytes = words[:2].view(np.uint8).copy()
        self.load(key_bytes, nonce=int(words[2]), counter_start=lane_offset)
        if counter_stride is not None:
            if counter_stride < self.engine.n_lanes:
                raise SpecificationError("counter_stride must cover this bank's lanes")
            self._counter_stride = np.uint64(counter_stride)
        return self

    # -- the round function on (16, 8, n_words) plane stacks --------------------
    def _add_round_key(self, state: np.ndarray, rnd: int) -> None:
        mask = self._rk_masks[rnd]
        state[mask] = ~state[mask]
        self.engine.counter.add("xor", int(mask.sum()))

    def _sub_bytes(self, state: np.ndarray) -> np.ndarray:
        out = self._sbox(*(state[:, i, :] for i in range(8)))
        new = np.empty_like(state)
        for i in range(8):
            new[:, i, :] = out[f"y{i}"]
        self.engine.counter.add("xor", 16 * self._sbox_gates["xor"])
        self.engine.counter.add("and_", 16 * self._sbox_gates["and"])
        self.engine.counter.add("or_", 16 * self._sbox_gates["or"])
        self.engine.counter.add("not_", 16 * self._sbox_gates["not"])
        return new

    def _mix_columns(self, state: np.ndarray) -> np.ndarray:
        cols = state.reshape(4, 4, 8, -1)  # (col, row, bit, words)
        t = cols[:, 0] ^ cols[:, 1] ^ cols[:, 2] ^ cols[:, 3]  # (col, 8, words)
        out = np.empty_like(cols)
        for r in range(4):
            out[:, r] = cols[:, r] ^ t ^ _xtime_planes(cols[:, r] ^ cols[:, (r + 1) % 4])
        # xors: t(3*8) + per-row (8 + 8 + xtime-input 8 + xtime 4) per column
        self.engine.counter.add("xor", 4 * (24 + 4 * 28))
        return out.reshape(state.shape)

    def _encrypt_planes(self, state: np.ndarray) -> np.ndarray:
        """Run the 10 AES rounds on a (16, 8, n_words) plane stack in place."""
        self._add_round_key(state, 0)
        for rnd in range(1, 10):
            state = self._sub_bytes(state)
            state = state.reshape(16, -1)[_SHIFT_ROWS_PERM].reshape(16, 8, -1)
            state = self._mix_columns(state)
            self._add_round_key(state, rnd)
        state = self._sub_bytes(state)
        state = state.reshape(16, -1)[_SHIFT_ROWS_PERM].reshape(16, 8, -1)
        self._add_round_key(state, 10)
        return state

    # -- counter plumbing ----------------------------------------------------------
    def _counter_block_bytes(self, batch_index: int) -> np.ndarray:
        """Per-lane 16-byte blocks ``nonce64 (BE) || counter64 (BE)``."""
        n = self.engine.n_lanes
        ctr = (
            self._counter_base
            + np.uint64(batch_index) * self._counter_stride
            + np.arange(n, dtype=np.uint64)
        )
        blocks = np.empty((n, 16), dtype=np.uint8)
        blocks[:, :8] = np.frombuffer(int(self._nonce).to_bytes(8, "big"), dtype=np.uint8)
        blocks[:, 8:] = ctr.astype(">u8").view(np.uint8).reshape(n, 8)
        return blocks

    # -- keystream -----------------------------------------------------------------
    def _require_loaded(self) -> None:
        if not self._key_loaded:
            raise KeyScheduleError("AES bank must be loaded/seeded before generating")

    def next_block_planes(self) -> np.ndarray:
        """One CTR batch → ``(128, n_words)`` keystream planes."""
        self._require_loaded()
        blocks = self._counter_block_bytes(self._blocks_done)
        self._blocks_done += 1
        planes = bitslice_bytes(blocks, dtype=self.engine.dtype)
        state = planes.reshape(16, 8, -1)
        return self._encrypt_planes(state).reshape(128, -1)

    def skip_rows(self, n_rows: int) -> None:
        """O(1) counter-space seek past ``n_rows`` keystream planes.

        CTR mode's defining property (and why §5.4 partitions the counter
        space across GPUs): jumping ahead is a counter add, not a
        regeneration.  Only whole 128-plane batches can be skipped.
        """
        self._require_loaded()
        if n_rows % 128:
            raise SpecificationError("AES-CTR seek granularity is 128 planes")
        self._blocks_done += n_rows // 128

    def _count_batch_gates(self, n_batches: int) -> None:
        """Gate tallies for *n_batches* fused CTR batches (mirrors the
        per-op accounting of the unfused round functions)."""
        ark = sum(int(m.sum()) for m in self._rk_masks)
        self.engine.counter.add("xor", n_batches * (ark + 9 * 4 * (24 + 4 * 28)))
        self.engine.counter.add("xor", n_batches * 10 * 16 * self._sbox_gates["xor"])
        self.engine.counter.add("and_", n_batches * 10 * 16 * self._sbox_gates["and"])
        self.engine.counter.add("or_", n_batches * 10 * 16 * self._sbox_gates["or"])
        self.engine.counter.add("not_", n_batches * 10 * 16 * self._sbox_gates["not"])

    def next_planes(
        self, n_rows: int, *, out: np.ndarray | None = None, epilogue=None
    ) -> np.ndarray:
        """Emit ``(n_rows, n_words)`` keystream planes (multiples of 128
        are generated; the tail batch is truncated).

        With ``engine.fused`` the batches come from the compiled kernel
        (in-place S-box circuit, view-based rounds) — bit-identical.  An
        explicit *out* must hold the whole-batch row count (``n_rows``
        rounded up to :attr:`rows_granularity`).  *epilogue* (the
        single-touch hook) sees exactly the emitted ``out[:n_rows]``
        view — rows generated beyond a truncated tail batch are never
        part of the stream, so they are not accounted either.
        """
        self._require_loaded()
        batches = -(-n_rows // 128)
        if out is None:
            out = np.empty((batches * 128, self.engine.n_words), dtype=self.engine.dtype)
        elif out.shape[0] < batches * 128:
            raise SpecificationError(
                f"out must hold {batches * 128} rows (whole CTR batches), got {out.shape[0]}"
            )
        if getattr(self.engine, "fused", False):
            from repro.codegen.fused import fused_generate

            fused_generate(self, "aes128ctr", batches, out)
            self._count_batch_gates(batches)
            if epilogue is not None:
                epilogue(out[:n_rows])
            return out[:n_rows]
        for i in range(batches):
            out[128 * i : 128 * (i + 1)] = self.next_block_planes()
        if epilogue is not None:
            epilogue(out[:n_rows])
        return out[:n_rows]

    def keystream_bytes_per_lane(self, n_blocks: int) -> np.ndarray:
        """Per-lane keystream bytes: ``(n_lanes, 16 * n_blocks)`` uint8."""
        self._require_loaded()
        chunks = []
        for _ in range(n_blocks):
            planes = self.next_block_planes()
            chunks.append(unbitslice_bytes(planes, self.engine.n_lanes))
        return np.concatenate(chunks, axis=1)

    def keystream_bits(self, n_bits: int) -> np.ndarray:
        """Per-lane keystream bits: ``(n_lanes, n_bits)`` (little bit order
        within each byte, matching :mod:`repro.bitio`)."""
        n_blocks = -(-n_bits // 128)
        per_lane = self.keystream_bytes_per_lane(n_blocks)
        bits = np.unpackbits(per_lane, axis=1, bitorder="little")
        return bits[:, :n_bits]

    def gates_per_output_bit(self) -> float:
        """Logic gates per keystream bit per lane, from the live circuits."""
        sbox_total = self._sbox_gates["total"]
        per_round = 16 * sbox_total + 4 * (24 + 4 * 28) + 64  # sub + mix + ark avg
        total = 10 * per_round + 64  # + initial whitening
        return total / 128.0
