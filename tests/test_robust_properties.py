"""Property-based fault-tolerance guarantee: for every fault plan that
eventually lets each partition succeed, the supervised multi-device
output equals the sequential reference byte for byte."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpu.multigpu import MultiDeviceGenerator
from repro.robust.faults import Fault, FaultPlan

N_DEVICES = 3
MAX_FAULT_ATTEMPT = 2  # strictly below the retry budget: plans always succeed

# crash / corrupt / stuck faults on any (partition, attempt) the retry
# budget can outlast; delay is excluded only to keep the suite fast (the
# timeout path is covered deterministically in test_robust_supervisor)
faults = st.builds(
    Fault,
    kind=st.sampled_from(["crash", "corrupt", "stuck"]),
    partition=st.integers(0, N_DEVICES - 1),
    attempt=st.integers(0, MAX_FAULT_ATTEMPT),
    corrupt_bytes=st.integers(1, 8),
    stuck_byte=st.integers(0, 255),
)

plans = st.builds(
    FaultPlan,
    faults=st.lists(faults, max_size=6).map(tuple),
    seed=st.integers(0, 2**16),
)


class TestEventualSuccessEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=plans, seed=st.integers(0, 2**32 - 1))
    def test_supervised_output_equals_reference(self, plan, seed):
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=seed,
            lanes=32,
            n_devices=N_DEVICES,
            block_bytes=128,
            max_retries=MAX_FAULT_ATTEMPT + 1,
            verify_crc=True,
            fault_plan=plan,
        )
        # the in-process supervised path: same retry/verify policy as the
        # pool path without per-example process fan-out cost
        assert gen.generate(5, parallel=False) == gen.sequential_reference(5)

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(plan=plans)
    def test_process_backed_equivalence(self, plan):
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=11,
            lanes=32,
            n_devices=N_DEVICES,
            block_bytes=128,
            max_retries=MAX_FAULT_ATTEMPT + 1,
            verify_crc=True,
            fault_plan=plan,
        )
        assert gen.generate(4, parallel=True) == gen.sequential_reference(4)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_devices=st.integers(1, 6),
        total_blocks=st.integers(0, 12),
        crash_partition=st.integers(0, 5),
    )
    def test_any_geometry_single_crash(self, n_devices, total_blocks, crash_partition):
        plan = FaultPlan((Fault("crash", crash_partition, 0),))
        gen = MultiDeviceGenerator(
            "xorwow",
            seed=3,
            lanes=32,
            n_devices=n_devices,
            block_bytes=64,
            fault_plan=plan,
        )
        assert gen.generate(total_blocks, parallel=False) == gen.sequential_reference(
            total_blocks
        )
