"""Shared helpers for the SP 800-22 implementations."""

from __future__ import annotations

import numpy as np
from scipy.special import erfc, gammaincc

from repro.bitio.bits import as_bit_array
from repro.errors import InsufficientDataError

__all__ = ["igamc", "erfc", "check_bits", "plus_minus_one", "overlapping_pattern_counts"]


def igamc(a: float, x: float) -> float:
    """Upper incomplete gamma ratio Q(a, x) — NIST's ``igamc``."""
    return float(gammaincc(a, x))


def check_bits(bits, min_length: int, test_name: str) -> np.ndarray:
    """Validate a bit sequence and the test's minimum-length requirement."""
    arr = as_bit_array(bits).ravel()
    if arr.size < min_length:
        raise InsufficientDataError(
            f"{test_name} requires at least {min_length} bits, got {arr.size}"
        )
    return arr


def plus_minus_one(bits: np.ndarray) -> np.ndarray:
    """Map 0/1 bits to ∓1 as float64 (NIST's ``X_i = 2ε_i − 1``)."""
    return 2.0 * bits.astype(np.float64) - 1.0


def overlapping_pattern_counts(bits: np.ndarray, m: int, wrap: bool = True) -> np.ndarray:
    """Counts of all ``2^m`` overlapping m-bit patterns.

    With ``wrap=True`` (serial / approximate-entropy convention) the
    sequence is extended circularly so there are exactly ``n`` windows.
    Pattern value convention: first bit of the window is the most
    significant (matches the NIST reference code).
    """
    n = bits.size
    if m <= 0:
        raise InsufficientDataError("pattern length m must be positive")
    if m > 24:
        raise InsufficientDataError("pattern length m > 24 is not supported")
    ext = np.concatenate([bits, bits[: m - 1]]) if wrap else bits
    n_windows = n if wrap else n - m + 1
    if n_windows <= 0:
        raise InsufficientDataError("sequence shorter than pattern length")
    vals = np.zeros(n_windows, dtype=np.int64)
    for j in range(m):
        vals = (vals << 1) | ext[j : j + n_windows]
    return np.bincount(vals, minlength=1 << m)
