"""Multi-device scale-out (paper §5.4).

The paper splits the input parameters — seed, nonce, counter — across
GPUs, runs the same kernel on each, and concatenates the outputs; with
two GTX 1080 Tis it measures 1.92× and notes that 4–8 devices degrade
"due to the cost of data scheduling latency [and] data concatenation".

Here a *device* is a worker process: the partitioning, per-device
generation and reconstruction logic is identical, and the key §5.4
property — the multi-device output equals the single-device sequential
output — is testable exactly.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError, SpecificationError

__all__ = [
    "partition_counter_space",
    "scaling_model",
    "MultiDeviceGenerator",
    "LanePartitionedGenerator",
    "DevicePartition",
]

#: Bitsliced banks that support the seed/IV-space lane partitioning
#: (algorithm name → class path).  AES-CTR partitions the counter space
#: via MultiDeviceGenerator instead; the row-major baselines have no lane
#: notion.
_LANE_BANKS = {
    "mickey2": "repro.ciphers.mickey_bitsliced.BitslicedMickey2",
    "grain": "repro.ciphers.grain_bitsliced.BitslicedGrain",
    "trivium": "repro.ciphers.trivium_bitsliced.BitslicedTrivium",
}


@dataclass(frozen=True)
class DevicePartition:
    """One device's slice of the global counter space."""

    device_id: int
    start_block: int
    n_blocks: int


def partition_counter_space(total_blocks: int, n_devices: int) -> list[DevicePartition]:
    """Split ``total_blocks`` counter blocks across equal-power devices.

    Equal-size contiguous ranges (the paper: "the input data is equally
    broken down into the same sized partitions"), with the remainder
    spread over the first devices.
    """
    if n_devices <= 0 or total_blocks < 0:
        raise SpecificationError("need n_devices > 0 and total_blocks >= 0")
    base, rem = divmod(total_blocks, n_devices)
    parts = []
    start = 0
    for d in range(n_devices):
        size = base + (1 if d < rem else 0)
        parts.append(DevicePartition(d, start, size))
        start += size
    return parts


def scaling_model(n_devices: int, overhead_per_device: float = 0.0417) -> float:
    """Speedup over one device: ``n / (1 + c·(n−1))``.

    ``c`` is calibrated to the paper's measured 1.92× at two devices
    (``2/(1+c) = 1.92 → c ≈ 0.0417``); the same constant then predicts
    the degradation the paper describes at 4 and 8 devices.
    """
    if n_devices <= 0:
        raise ModelError("n_devices must be positive")
    return n_devices / (1.0 + overhead_per_device * (n_devices - 1))


def _device_worker(args) -> tuple[int, bytes]:
    """Generate one partition (runs in a worker process = one 'GPU')."""
    device_id, algorithm, seed, lanes, start_block, n_blocks, block_bytes = args
    from repro.core.generator import BSRNG

    rng = BSRNG(algorithm, seed=seed, lanes=lanes)
    # Seek to this device's offset.  Counter-based kernels (AES-CTR, the
    # paper's §5.4 example) jump in O(1); LFSR-based kernels clock through
    # and discard, which caps their multi-device speedup — exactly why the
    # paper partitions *counter space* rather than a serial stream.
    rng.skip_bytes(start_block * block_bytes)
    return device_id, rng.random_bytes(n_blocks * block_bytes)


class MultiDeviceGenerator:
    """Partition a generation job across process-backed devices.

    Parameters
    ----------
    algorithm / seed / lanes:
        Passed through to :class:`~repro.core.generator.BSRNG` on each
        device.
    n_devices:
        Worker count (the paper's GPU count).
    block_bytes:
        Partitioning granularity of the output stream.
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        lanes: int = 1024,
        n_devices: int = 2,
        block_bytes: int = 1 << 16,
        mp_context: str | None = None,
    ) -> None:
        if n_devices <= 0:
            raise SpecificationError("n_devices must be positive")
        self.algorithm = algorithm
        self.seed = seed
        self.lanes = lanes
        self.n_devices = n_devices
        self.block_bytes = block_bytes
        # fork avoids re-importing the stack in every worker (a fixed
        # ~second per device that would swamp small jobs); platforms
        # without fork fall back to spawn.
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context

    def generate(self, total_blocks: int, parallel: bool = True) -> bytes:
        """Generate ``total_blocks × block_bytes`` output bytes.

        With ``parallel=True`` partitions run in separate processes and
        are concatenated in device order (the paper's reconstruction).
        """
        parts = partition_counter_space(total_blocks, self.n_devices)
        jobs = [
            (p.device_id, self.algorithm, self.seed, self.lanes, p.start_block, p.n_blocks, self.block_bytes)
            for p in parts
            if p.n_blocks > 0
        ]
        if parallel and len(jobs) > 1:
            ctx = mp.get_context(self.mp_context)
            with ctx.Pool(processes=len(jobs)) as pool:
                results = pool.map(_device_worker, jobs)
        else:
            results = [_device_worker(j) for j in jobs]
        results.sort(key=lambda r: r[0])
        return b"".join(chunk for _, chunk in results)

    def sequential_reference(self, total_blocks: int) -> bytes:
        """The single-device output the multi-device result must equal."""
        from repro.core.generator import BSRNG

        rng = BSRNG(self.algorithm, seed=self.seed, lanes=self.lanes)
        return rng.random_bytes(total_blocks * self.block_bytes)


def _lane_worker(args) -> tuple[int, np.ndarray]:
    """Run one device's lane window (a worker process = one 'GPU')."""
    device_id, cls_path, seed, lane_offset, n_lanes, n_bits = args
    from repro.core.engine import BitslicedEngine

    module_name, cls_name = cls_path.rsplit(".", 1)
    cls = getattr(__import__(module_name, fromlist=[cls_name]), cls_name)
    bank = cls(BitslicedEngine(n_lanes=n_lanes)).seed(seed, lane_offset=lane_offset)
    return device_id, bank.keystream_bits(n_bits)


class LanePartitionedGenerator:
    """§5.4's *input-parameter* partitioning, literally.

    The paper shares and partitions "the input parameters (e.g., the
    seed, nonce, and counter)" across GPUs: each device derives its own
    window of the per-lane key/IV material, runs an independent bank, and
    the outputs are stacked.  Unlike stream-splitting
    (:class:`MultiDeviceGenerator`), no device recomputes another's work
    — LFSR-based ciphers scale too, and the union of device outputs
    equals one big single-device bank lane-for-lane.
    """

    def __init__(
        self,
        algorithm: str = "mickey2",
        seed: int = 0,
        total_lanes: int = 2048,
        n_devices: int = 2,
        mp_context: str | None = None,
    ) -> None:
        if algorithm not in _LANE_BANKS:
            raise SpecificationError(
                f"lane partitioning supports {sorted(_LANE_BANKS)}; "
                f"use MultiDeviceGenerator for counter-based kernels"
            )
        if n_devices <= 0 or total_lanes <= 0:
            raise SpecificationError("need n_devices > 0 and total_lanes > 0")
        if total_lanes % n_devices:
            raise SpecificationError("total_lanes must divide evenly across devices")
        self.algorithm = algorithm
        self.seed = seed
        self.total_lanes = total_lanes
        self.n_devices = n_devices
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self.mp_context = mp_context

    def device_partitions(self) -> list[DevicePartition]:
        """Lane windows per device (start/size in lanes)."""
        per = self.total_lanes // self.n_devices
        return [DevicePartition(d, d * per, per) for d in range(self.n_devices)]

    def generate_lanes(self, n_bits: int, parallel: bool = True) -> np.ndarray:
        """Per-lane keystreams, ``(total_lanes, n_bits)`` uint8."""
        jobs = [
            (p.device_id, _LANE_BANKS[self.algorithm], self.seed, p.start_block, p.n_blocks, n_bits)
            for p in self.device_partitions()
        ]
        if parallel and len(jobs) > 1:
            ctx = mp.get_context(self.mp_context)
            with ctx.Pool(processes=len(jobs)) as pool:
                results = pool.map(_lane_worker, jobs)
        else:
            results = [_lane_worker(j) for j in jobs]
        results.sort(key=lambda r: r[0])
        return np.vstack([chunk for _, chunk in results])

    def sequential_reference(self, n_bits: int) -> np.ndarray:
        """One big bank on a single device — the equivalence target."""
        _, out = _lane_worker((0, _LANE_BANKS[self.algorithm], self.seed, 0, self.total_lanes, n_bits))
        return out
