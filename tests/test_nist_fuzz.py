"""Robustness fuzz for the statistical tests: on *any* input of
sufficient length, every test must return finite p-values in [0, 1] or
raise InsufficientDataError — never NaN, never crash, never escape the
unit interval.  Pathological structure is exactly what these tests
exist to judge, so they must stay numerically sound on it."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.nist import ALL_TESTS
from repro.nist.fips140 import fips140_battery

# Generators of adversarially-structured bit sequences.


def _from_bytes(raw: bytes, n: int) -> np.ndarray:
    return np.unpackbits(np.frombuffer(raw, np.uint8), bitorder="little")[:n]


structured = st.one_of(
    # random block repeated (tiny period)
    st.tuples(st.binary(min_size=1, max_size=8), st.just("tile")),
    # heavy bias, both directions
    st.tuples(st.floats(0.01, 0.99), st.just("bias")),
    # long constant runs with random interludes
    st.tuples(st.integers(1, 500), st.just("runs")),
    # pure noise
    st.tuples(st.integers(0, 2**32 - 1), st.just("noise")),
)


def make_bits(spec, n: int = 4096) -> np.ndarray:
    value, kind = spec
    if kind == "tile":
        unit = _from_bytes(value, 8 * len(value))
        if not unit.size:
            unit = np.array([0], np.uint8)
        return np.tile(unit, n // unit.size + 1)[:n]
    if kind == "bias":
        return (np.random.default_rng(0).random(n) < value).astype(np.uint8)
    if kind == "runs":
        rng = np.random.default_rng(value)
        out = []
        total = 0
        while total < n:
            length = int(rng.integers(1, value + 1))
            out.append(np.full(length, rng.integers(0, 2), np.uint8))
            total += length
        return np.concatenate(out)[:n]
    return np.random.default_rng(value).integers(0, 2, n, dtype=np.uint8)


FAST_TESTS = {
    k: v
    for k, v in ALL_TESTS.items()
    if k
    in (
        "Frequency",
        "BlockFrequency",
        "CumulativeSums",
        "Runs",
        "LongestRun",
        "FFT",
        "NonOverlappingTemplate",
        "Serial",
        "ApproximateEntropy",
    )
}


class TestPValueSoundness:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(spec=structured)
    def test_all_fast_tests_sound(self, spec):
        bits = make_bits(spec)
        for name, fn in FAST_TESTS.items():
            try:
                r = fn(bits)
            except InsufficientDataError:
                continue
            for p in r.p_values:
                assert np.isfinite(p), (name, spec)
                assert 0.0 <= p <= 1.0, (name, spec, p)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(spec=structured)
    def test_heavy_tests_sound(self, spec):
        bits = make_bits(spec, n=45_000)  # enough for Rank (38 matrices)
        for name in ("Rank", "OverlappingTemplate", "RandomExcursions", "RandomExcursionsVariant"):
            try:
                r = ALL_TESTS[name](bits)
            except InsufficientDataError:
                continue
            for p in r.p_values:
                assert np.isfinite(p) and 0.0 <= p <= 1.0, (name, spec, p)

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(spec=structured)
    def test_fips_never_crashes(self, spec):
        bits = make_bits(spec, n=20_000)
        report = fips140_battery(bits)
        assert isinstance(report.passed, bool)
        assert np.isfinite(report.statistics["poker_x"])

    def test_extreme_inputs_every_test(self):
        """The four most degenerate inputs through the whole battery."""
        n = 1_100_000
        extremes = {
            "zeros": np.zeros(n, np.uint8),
            "ones": np.ones(n, np.uint8),
            "alternating": np.tile([0, 1], n // 2).astype(np.uint8),
            "half_half": np.concatenate([np.zeros(n // 2, np.uint8), np.ones(n // 2, np.uint8)]),
        }
        for label, bits in extremes.items():
            for name, fn in ALL_TESTS.items():
                if name == "LinearComplexity":
                    continue  # several seconds each; structure covered by Serial/ApEn
                try:
                    r = fn(bits)
                except InsufficientDataError:
                    continue
                for p in r.p_values:
                    assert np.isfinite(p) and 0.0 <= p <= 1.0, (label, name, p)
                # degenerate inputs must never *pass* the frequency family
                if name in ("Frequency", "Runs") and label in ("zeros", "ones"):
                    assert not r.passed, (label, name)
