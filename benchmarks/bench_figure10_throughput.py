"""E3 — Figure 10: throughput of the proposed method vs cuRAND.

Two complementary reproductions:

1. **Modeled** (the paper's axis): anchored roofline predictions in
   Gbit/s for AES / MICKEY / Grain / cuRAND-MT on all six Table-2 GPUs.
   Expected shape: MICKEY > Grain > cuRAND > AES at the high end, scaling
   with device power.
2. **Measured** (this machine): wall-clock throughput of the same four
   generator kernels in the NumPy engine, plus the bit-serial reference
   MICKEY so the bitslicing speedup itself (the paper's mechanism) is a
   measured, not modeled, quantity.
"""

import numpy as np
import pytest
from _emit import emit_bench
from conftest import FULL_SCALE, emit_table, measure_gbps

from repro.baselines.mt19937 import MT19937Bank
from repro.ciphers.aes_bitsliced import BitslicedAESCTR
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.ciphers.mickey import Mickey2
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.trivium_bitsliced import BitslicedTrivium
from repro.core.engine import BitslicedEngine
from repro.gpu.model import ThroughputModel
from repro.gpu.specs import TABLE2_GPUS

KERNELS = ("aes128ctr", "mickey2", "grain", "curand-mt")
LANES = 1 << 17 if FULL_SCALE else 1 << 14
ROWS = 256 if FULL_SCALE else 64

# Kernels with a fused compiled path, with the plane rows drawn per call
# (AES works in 128-row CTR batches, so give it exactly one).
FUSED_KERNELS = {
    "mickey2": (BitslicedMickey2, ROWS),
    "grain": (BitslicedGrain, ROWS),
    "trivium": (BitslicedTrivium, ROWS),
    "aes128ctr": (BitslicedAESCTR, 128),
}


def test_figure10_modeled(benchmark):
    from repro.report import grouped_bar_chart, series_table

    model = ThroughputModel()
    series = benchmark(model.figure10_series)
    ordered = {k: series[k] for k in KERNELS}
    lines = [
        series_table(ordered, fmt="{:.0f}"),
        "",
        grouped_bar_chart(ordered, width=44, unit="Gb/s"),
        "",
        "(Gbit/s; anchored roofline model — see EXPERIMENTS.md E3)",
    ]
    emit_table("figure10_modeled", lines)
    emit_bench(
        "figure10_modeled",
        params={"kernels": list(KERNELS)},
        gbps=series["mickey2"]["GTX 2080 Ti"],
        metrics={"modeled_gbps": {k: dict(v) for k, v in ordered.items()}},
    )

    # Paper shape assertions.  On the 2010-era GTX 480 the model has
    # MICKEY's 210-register working set collapse occupancy below Grain's —
    # the paper's ranking claims are made on the modern parts.
    for gpu in TABLE2_GPUS:
        assert series["grain"][gpu] > series["aes128ctr"][gpu]
        if gpu != "GTX 480":
            assert series["mickey2"][gpu] >= series["grain"][gpu]
    peak_kernel = max(KERNELS, key=lambda k: max(series[k].values()))
    assert peak_kernel == "mickey2"
    assert series["mickey2"]["GTX 2080 Ti"] == pytest.approx(2720.0)


@pytest.mark.parametrize("name", ["mickey2", "grain", "aes128ctr", "curand-mt"])
def test_figure10_measured_kernel(benchmark, name):
    """Wall-clock software throughput of each generator kernel."""
    if name == "curand-mt":
        bank = MT19937Bank(seed=1, n_streams=512)
        n_words = LANES * ROWS // 32
        # the bank rounds up to whole 624-word blocks; count what it returns
        bits = bank.next_words(n_words).size * 32

        def gen():
            bank.next_words(n_words)
    else:
        cls = {
            "mickey2": BitslicedMickey2,
            "grain": BitslicedGrain,
            "aes128ctr": BitslicedAESCTR,
        }[name]
        bank = cls(BitslicedEngine(n_lanes=LANES)).seed(1)
        rows = ROWS if name != "aes128ctr" else max(ROWS // 16, 8)

        def gen():
            bank.next_planes(rows)

        bits = rows * LANES
    benchmark.extra_info["software_gbps"] = measure_gbps(gen, bits, repeat=2, warmup=1)
    benchmark.pedantic(gen, rounds=2, iterations=1, warmup_rounds=0)


def test_figure10_measured_summary(benchmark):
    """Aggregate the measured series and check the software-side shape."""
    rows = {}
    banks = {
        "mickey2 (bitsliced)": (BitslicedMickey2(BitslicedEngine(n_lanes=LANES)).seed(1), ROWS),
        "grain (bitsliced)": (BitslicedGrain(BitslicedEngine(n_lanes=LANES)).seed(1), ROWS),
        "aes128ctr (bitsliced)": (BitslicedAESCTR(BitslicedEngine(n_lanes=LANES)).seed(1), max(ROWS // 16, 8)),
    }
    for name, (bank, rows_n) in banks.items():
        rows[name] = measure_gbps(lambda b=bank, r=rows_n: b.next_planes(r), rows_n * LANES, repeat=2)
    mt = MT19937Bank(seed=1, n_streams=512)
    n_words = LANES * ROWS // 32
    mt_bits = mt.next_words(n_words).size * 32
    rows["curand-mt (row-major)"] = measure_gbps(lambda: mt.next_words(n_words), mt_bits, repeat=2)
    ref = Mickey2(np.ones(80, np.uint8))
    rows["mickey2 (bit-serial ref)"] = measure_gbps(lambda: ref.keystream(4000), 4000, repeat=2)

    lines = [f"{'kernel':<28}{'Gbit/s (this machine)':>24}", "-" * 52]
    for name, gbps in rows.items():
        lines.append(f"{name:<28}{gbps:>24.4f}")
    lines.append("")
    lines.append(f"bitslicing speedup over bit-serial MICKEY: "
                 f"{rows['mickey2 (bitsliced)'] / rows['mickey2 (bit-serial ref)']:.0f}x")
    emit_table("figure10_measured", lines)
    emit_bench(
        "figure10_measured",
        params={"lanes": LANES, "rows": ROWS, "full_scale": FULL_SCALE},
        gbps=rows["mickey2 (bitsliced)"],
        metrics={"gbps_by_kernel": dict(rows)},
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in rows.items()})
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # The mechanism the paper exploits must be measurable here: the
    # bitsliced MICKEY bank beats the bit-serial reference by orders of
    # magnitude, and the stream ciphers beat bitsliced AES.
    assert rows["mickey2 (bitsliced)"] > 50 * rows["mickey2 (bit-serial ref)"]
    assert rows["grain (bitsliced)"] > rows["aes128ctr (bitsliced)"]
    assert rows["mickey2 (bitsliced)"] > rows["aes128ctr (bitsliced)"]


def test_figure10_fused_speedup(benchmark):
    """Fused compiled kernels vs the per-clock interpreter.

    Measures every kernel both ways on identical workloads and emits the
    speedup ratios — machine-independent numbers the CI perf-regression
    gate diffs against the committed baseline.  The headline claim is
    the *aggregate* (geometric-mean) speedup; MICKEY's irregular
    clocking leaves it memory-bound and closer to the interpreter.
    """
    gbps_unfused, gbps_fused, speedup = {}, {}, {}
    for name, (cls, rows_n) in FUSED_KERNELS.items():
        plain = cls(BitslicedEngine(n_lanes=LANES)).seed(1)
        gbps_unfused[name] = measure_gbps(
            lambda b=plain, r=rows_n: b.next_planes(r), rows_n * LANES, repeat=2
        )
        fast = cls(BitslicedEngine(n_lanes=LANES, fused=True)).seed(1)
        gbps_fused[name] = measure_gbps(
            lambda b=fast, r=rows_n: b.next_planes(r), rows_n * LANES, repeat=2
        )
        speedup[name] = gbps_fused[name] / gbps_unfused[name]
    geomean = float(np.exp(np.mean([np.log(s) for s in speedup.values()])))

    lines = [
        f"{'kernel':<12}{'unfused Gb/s':>14}{'fused Gb/s':>14}{'speedup':>10}",
        "-" * 50,
    ]
    for name in FUSED_KERNELS:
        lines.append(
            f"{name:<12}{gbps_unfused[name]:>14.4f}{gbps_fused[name]:>14.4f}"
            f"{speedup[name]:>9.2f}x"
        )
    lines.append("")
    lines.append(f"aggregate (geomean) fused speedup: {geomean:.2f}x")
    emit_table("figure10_fused", lines)
    emit_bench(
        "figure10_fused",
        params={
            "lanes": LANES,
            "rows": {k: v[1] for k, v in FUSED_KERNELS.items()},
            "clocks_per_call": 32,
            "full_scale": FULL_SCALE,
        },
        gbps=max(gbps_fused.values()),
        metrics={
            "gbps_unfused": dict(gbps_unfused),
            "gbps_fused": dict(gbps_fused),
            "speedup": dict(speedup),
            "geomean_speedup": geomean,
        },
    )
    benchmark.extra_info.update({f"speedup_{k}": round(v, 3) for k, v in speedup.items()})
    benchmark.extra_info["geomean_speedup"] = round(geomean, 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Acceptance: the fused path is the point of this machinery.
    assert geomean >= 2.0, f"aggregate fused speedup {geomean:.2f}x < 2x"
    for name, s in speedup.items():
        assert s > 1.05, f"{name} fused path slower than interpreter ({s:.2f}x)"
