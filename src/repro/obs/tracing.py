"""Span tracing with a Chrome-trace-event exporter.

A *span* is one timed region of the generation pipeline — a refill, a
partition round, a health screen.  Spans nest (a ``gen`` span contains
many ``refill`` spans), carry arbitrary key/value attributes, and record
both wall time and CPU time, so a span that waited on a worker pool is
distinguishable from one that burned the local core.

Every live span also carries distributed-tracing identity from
:mod:`repro.obs.context`: a ``trace_id`` naming the request/battery/job
it belongs to, its own ``span_id``, and the ``parent_id`` of the
enclosing span — in this process or, via the wire tuples the serve and
fleet layers propagate, in another one.  Worker processes record into a
local tracer, :meth:`Tracer.snapshot` the result (timestamps carry a
wall-clock epoch so they can be rebased), ship the plain dict home with
the metrics tuple, and the parent :meth:`Tracer.merge` s it — one
Chrome-trace JSON then shows daemon → controller → worker → kernel
refill on a single timeline.

The exporter writes the Chrome trace-event JSON format (``ph: "X"``
complete events, microsecond timestamps), which loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — drop the
``--trace-out`` file onto the UI and read the pipeline's time structure
off the flame chart.

Tracing is off by default.  The disabled path allocates nothing: a
single shared no-op context manager is returned, so instrumenting a hot
loop with ``with span("refill"):`` costs one attribute check when
tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

from repro.obs import context as trace_context
from repro.obs.context import TraceContext

__all__ = ["SpanRecord", "Tracer", "SpanCollector", "span"]

#: Snapshot schema version (bump on breaking layout changes).
TRACE_SNAPSHOT_VERSION = 1

# A flight recorder (repro.obs.flight) installs its span sink here so the
# tracer can feed it without a circular import; ``None`` costs one check.
_span_sink = None


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    ts_us: float  # start, microseconds since the tracer's epoch
    dur_us: float  # wall duration, microseconds
    cpu_us: float  # CPU (process) time consumed, microseconds
    pid: int
    tid: int
    depth: int  # nesting depth within its thread (0 = outermost)
    args: dict = field(default_factory=dict)
    # distributed identity; None on spans recorded before PR 8 snapshots
    trace_id: str | None = None
    span_id: str | None = None
    parent_id: str | None = None


class _ThreadState(threading.local):
    depth = 0


class Tracer:
    """Collects :class:`SpanRecord` s and exports Chrome trace JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._epoch = time.perf_counter()
        # wall-clock twin of the perf_counter epoch: lets a parent rebase
        # a child process's timestamps onto its own timeline on merge
        self._epoch_unix = time.time()
        self._tls = _ThreadState()
        self._process_names: dict[int, str] = {}

    # -- recording ---------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since this tracer's epoch."""
        return (time.perf_counter() - self._epoch) * 1e6

    def add(self, record: SpanRecord) -> None:
        """Append one completed span."""
        with self._lock:
            self._records.append(record)
        if _span_sink is not None:
            _span_sink(record)

    def set_process_name(self, name: str, pid: int | None = None) -> None:
        """Label a pid's lane in the trace viewer (``process_name`` metadata)."""
        with self._lock:
            self._process_names[pid if pid is not None else os.getpid()] = name

    @property
    def records(self) -> list[SpanRecord]:
        """Copy of the recorded spans (chronological by completion)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all records and restart the epoch."""
        with self._lock:
            self._records.clear()
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()

    # -- cross-process merge -----------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable dump of this tracer for shipping to a parent process.

        Timestamps stay in this tracer's epoch; ``epoch_unix`` lets the
        receiving :meth:`merge` rebase them onto its own timeline.
        """
        with self._lock:
            records = list(self._records)
            names = dict(self._process_names)
            epoch_unix = self._epoch_unix
        return {
            "version": TRACE_SNAPSHOT_VERSION,
            "epoch_unix": epoch_unix,
            "pid": os.getpid(),
            "process_names": {str(pid): name for pid, name in names.items()},
            "spans": [
                {
                    "name": r.name,
                    "ts_us": r.ts_us,
                    "dur_us": r.dur_us,
                    "cpu_us": r.cpu_us,
                    "pid": r.pid,
                    "tid": r.tid,
                    "depth": r.depth,
                    "args": dict(r.args),
                    "trace_id": r.trace_id,
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                }
                for r in records
            ],
        }

    def merge(self, snap: dict | None, extra_args: dict | None = None) -> int:
        """Fold a :meth:`snapshot` from another process into this tracer.

        Child timestamps are rebased via the wall-clock epoch delta so
        the merged spans land at the right place on this tracer's
        timeline (wall clocks across local processes agree to far better
        than span granularity).  Returns the number of spans merged.
        """
        if not snap:
            return 0
        version = snap.get("version")
        if version != TRACE_SNAPSHOT_VERSION:
            raise ValueError(f"unsupported trace snapshot version: {version!r}")
        shift_us = (snap["epoch_unix"] - self._epoch_unix) * 1e6
        merged = 0
        for entry in snap.get("spans", ()):
            args = dict(entry.get("args") or {})
            if extra_args:
                args.update(extra_args)
            self.add(
                SpanRecord(
                    name=entry["name"],
                    ts_us=entry["ts_us"] + shift_us,
                    dur_us=entry["dur_us"],
                    cpu_us=entry["cpu_us"],
                    pid=entry["pid"],
                    tid=entry["tid"],
                    depth=entry["depth"],
                    args=args,
                    trace_id=entry.get("trace_id"),
                    span_id=entry.get("span_id"),
                    parent_id=entry.get("parent_id"),
                )
            )
            merged += 1
        for pid, name in (snap.get("process_names") or {}).items():
            self.set_process_name(name, pid=int(pid))
        return merged

    # -- export ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace-event JSON object (Perfetto-loadable).

        Each span becomes one complete event (``ph: "X"``); CPU time,
        nesting depth and the distributed-trace ids ride along in
        ``args`` where the trace viewer shows them in the selection
        panel.  Named processes get ``process_name`` metadata events so
        the daemon/controller/worker lanes are labelled.
        """
        events = []
        with self._lock:
            process_names = dict(self._process_names)
        for pid, name in sorted(process_names.items()):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for r in self.records:
            args = dict(r.args)
            args["cpu_us"] = round(r.cpu_us, 1)
            args["depth"] = r.depth
            if r.trace_id is not None:
                args["trace_id"] = r.trace_id
            if r.span_id is not None:
                args["span_id"] = r.span_id
            if r.parent_id is not None:
                args["parent_id"] = r.parent_id
            events.append(
                {
                    "name": r.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(r.ts_us, 1),
                    "dur": round(r.dur_us, 1),
                    "pid": r.pid,
                    "tid": r.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` as JSON to *path*."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")


class _Span:
    """Live span context manager (only constructed when tracing is on)."""

    __slots__ = (
        "_tracer",
        "_name",
        "_args",
        "_t0",
        "_c0",
        "_ts",
        "_depth",
        "_ctx",
        "_parent_id",
        "_token",
    )

    def __init__(self, tracer: Tracer, name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        tls = self._tracer._tls
        self._depth = tls.depth
        tls.depth += 1
        parent = trace_context.current()
        if parent is None:
            self._parent_id = None
            self._ctx = TraceContext.mint()
        else:
            self._parent_id = parent.span_id
            self._ctx = parent.child()
        self._token = trace_context._set(self._ctx)
        self._ts = self._tracer.now_us()
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    @property
    def context(self) -> TraceContext:
        """This span's trace context (propagate it to children/headers)."""
        return self._ctx

    def __exit__(self, *exc) -> None:
        dur = (time.perf_counter() - self._t0) * 1e6
        cpu = (time.process_time() - self._c0) * 1e6
        self._tracer._tls.depth -= 1
        trace_context._reset(self._token)
        self._tracer.add(
            SpanRecord(
                name=self._name,
                ts_us=self._ts,
                dur_us=dur,
                cpu_us=cpu,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                args=self._args,
                trace_id=self._ctx.trace_id,
                span_id=self._ctx.span_id,
                parent_id=self._parent_id,
            )
        )


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **args):
    """Time one region: ``with span("refill", algo="mickey2"): ...``.

    Returns the shared no-op context manager when tracing is disabled —
    the instrumentation never allocates on the disabled path.
    """
    from repro import obs

    tracer = obs.active_tracer()
    if tracer is None:
        return _NOOP
    return _Span(tracer, name, args)


class SpanCollector:
    """Record a worker's spans under a propagated trace context.

    The worker-side half of cross-process tracing: wrap the unit of work
    in ``with SpanCollector(wire, "worker.job", worker=3) as col:`` and
    every ``span(...)`` inside lands under the caller's trace.  Three
    modes, decided at entry:

    * ``wire is None`` (tracing off at the call site) — pure no-op,
      ``snapshot`` stays ``None``;
    * a tracer is already active in *this* process (inline/degraded
      execution inside the parent) — record straight into it under the
      activated context and ship nothing (``snapshot`` is ``None``; the
      spans are already home);
    * otherwise (a real worker process) — install a fresh local
      :class:`Tracer`, record into it, and expose its :meth:`Tracer
      .snapshot` as ``.snapshot`` after exit for shipping with the
      result tuple.
    """

    __slots__ = (
        "_wire",
        "_name",
        "_args",
        "_mode",
        "_tracer",
        "_cm",
        "_exits",
        "snapshot",
        "_process_name",
    )

    def __init__(self, wire, name: str, process_name: str | None = None, **args):
        self._wire = wire
        self._name = name
        self._args = args
        self.snapshot = None
        self._mode = "off" if wire is None else "pending"
        self._process_name = process_name

    def __enter__(self) -> "SpanCollector":
        self._exits = []
        if self._mode == "off":
            return self
        from repro import obs

        existing = obs.active_tracer()
        if existing is not None:
            self._mode = "inline"
            self._tracer = existing
        else:
            self._mode = "ship"
            self._tracer = Tracer()
            if self._process_name:
                self._tracer.set_process_name(self._process_name)
            obs.enable_tracing(self._tracer)
            self._exits.append(obs.disable_tracing)
        ctx = TraceContext.from_wire(self._wire)
        token = trace_context._set(ctx)
        self._exits.append(lambda: trace_context._reset(token))
        self._cm = _Span(self._tracer, self._name, self._args)
        self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        if self._mode == "off":
            return
        self._cm.__exit__(*exc)
        for undo in reversed(self._exits):
            undo()
        if self._mode == "ship":
            self.snapshot = self._tracer.snapshot()
