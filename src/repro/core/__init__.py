"""Core bitslicing machinery — the paper's primary contribution.

Modules
-------
``bitslice``
    Row-major ↔ column-major bit-matrix transposes and the
    :class:`BitslicedState` container.
``gates``
    The gate layer: XOR/AND/OR/NOT/MUX over word vectors with
    instruction accounting (the software stand-in for one CUDA logic
    instruction applied across a warp's registers).
``registers``
    :class:`RotatingRegisterFile` — shift-by-renaming, the trick that
    removes per-clock shift/mask work from LFSR-style kernels.
``lfsr``
    Reference (row-major) and bitsliced LFSRs, Fibonacci and Galois.
``engine``
    :class:`BitslicedEngine` — lane bookkeeping, dtype policy, staged
    output buffers and gate accounting shared by all bitsliced kernels.
``generator``
    :class:`BSRNG` — the user-facing generator API over any bitsliced
    keystream kernel.
"""

from repro.core.bitslice import (
    BitslicedState,
    bitslice,
    bitslice_bytes,
    unbitslice,
    unbitslice_bytes,
)
from repro.core.engine import BitslicedEngine, GateCounter
from repro.core.generator import BSRNG, available_algorithms
from repro.core.lfsr import BitslicedLFSR, GaloisLFSR, ReferenceLFSR
from repro.core.registers import RotatingRegisterFile

__all__ = [
    "BitslicedState",
    "bitslice",
    "unbitslice",
    "bitslice_bytes",
    "unbitslice_bytes",
    "BitslicedEngine",
    "GateCounter",
    "RotatingRegisterFile",
    "ReferenceLFSR",
    "GaloisLFSR",
    "BitslicedLFSR",
    "BSRNG",
    "available_algorithms",
]
