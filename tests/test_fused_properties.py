"""Property and invariant tests for the fused path and its kernel cache.

Randomised key/IV/seed material, adversarial interleavings of
``reseed()`` / ``skip_bytes()`` / ragged partial reads, and the
process-global :data:`repro.codegen.fused.KERNEL_CACHE` invariants
(hits accumulate, misses stop once warm, invalidation forces an
identical recompile).
"""

import numpy as np
import pytest

from repro.ciphers.aes_bitsliced import BitslicedAESCTR
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.ciphers.mickey_bitsliced import BitslicedMickey2
from repro.ciphers.trivium_bitsliced import BitslicedTrivium
from repro.codegen.fused import (
    DEFAULT_CLOCKS_PER_CALL,
    KERNEL_CACHE,
    KernelCache,
    get_kernel,
)
from repro.core.engine import BitslicedEngine
from repro.core.generator import BSRNG
from repro.errors import SpecificationError

ALGORITHMS = ["trivium", "grain", "mickey2", "aes128ctr"]

STREAM_BANKS = {
    "trivium": (BitslicedTrivium, 80),
    "grain": (BitslicedGrain, 64),
    "mickey2": (BitslicedMickey2, 80),
}


class TestRandomMaterial:
    @pytest.mark.parametrize("name", sorted(STREAM_BANKS))
    def test_random_key_iv_matrices(self, name, rng):
        """Fresh random per-lane key/IV loads: fused == interpreter."""
        bank_cls, iv_bits = STREAM_BANKS[name]
        for trial in range(3):
            lanes = int(rng.integers(1, 70))
            keys = rng.integers(0, 2, (lanes, 80), dtype=np.uint8)
            ivs = rng.integers(0, 2, (lanes, iv_bits), dtype=np.uint8)
            k = int(rng.integers(1, 40))
            fused = bank_cls(BitslicedEngine(n_lanes=lanes, fused=True, clocks_per_call=k))
            plain = bank_cls(BitslicedEngine(n_lanes=lanes))
            fused.load(keys, ivs)
            plain.load(keys, ivs)
            n_rows = int(rng.integers(1, 3 * k + 2))
            assert np.array_equal(fused.next_planes(n_rows), plain.next_planes(n_rows)), (
                name, trial, lanes, k, n_rows,
            )

    def test_random_aes_keys(self, rng):
        for trial in range(3):
            key = rng.integers(0, 256, 16, dtype=np.uint8)
            nonce = int(rng.integers(0, 1 << 62))
            fused = BitslicedAESCTR(BitslicedEngine(n_lanes=19, fused=True, clocks_per_call=5))
            plain = BitslicedAESCTR(BitslicedEngine(n_lanes=19))
            fused.load(key, nonce=nonce)
            plain.load(key, nonce=nonce)
            n_rows = int(rng.integers(1, 1000))
            assert np.array_equal(fused.next_planes(n_rows), plain.next_planes(n_rows)), trial

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_random_seeds_full_generator(self, algorithm, rng):
        for _ in range(2):
            seed = int(rng.integers(0, 1 << 60))
            fused = BSRNG(algorithm, seed=seed, lanes=64, fused=True)
            plain = BSRNG(algorithm, seed=seed, lanes=64, fused=False, prefetch=False)
            n = int(rng.integers(1, 50_000))
            assert fused.random_bytes(n) == plain.random_bytes(n), (algorithm, seed, n)


class TestInterleavedOperations:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_reseed_jump_partial_interleave(self, algorithm, rng):
        """A random op schedule keeps fused+prefetch and plain in lockstep,
        and once warm the shared kernel cache never recompiles."""
        fused = BSRNG(algorithm, seed=3, lanes=64, fused=True, prefetch=True)
        plain = BSRNG(algorithm, seed=3, lanes=64, fused=False, prefetch=False)
        fused.random_bytes(64)  # warm the cache for this configuration
        plain.random_bytes(64)
        misses_before = KERNEL_CACHE.stats()["misses"]
        for step in range(12):
            op = rng.choice(["read", "skip", "reseed"], p=[0.6, 0.25, 0.15])
            if op == "read":
                n = int(rng.integers(1, 9000))
                assert fused.random_bytes(n) == plain.random_bytes(n), (algorithm, step)
            elif op == "skip":
                n = int(rng.integers(1, 9000))
                fused.skip_bytes(n)
                plain.skip_bytes(n)
            else:
                seed = int(rng.integers(0, 1 << 32))
                fused.reseed(seed)
                plain.reseed(seed)
        assert fused.random_bytes(1024) == plain.random_bytes(1024)
        assert KERNEL_CACHE.stats()["misses"] == misses_before

    @pytest.mark.parametrize("name", sorted(STREAM_BANKS))
    def test_reseed_reuses_kernel_and_context(self, name):
        bank_cls = STREAM_BANKS[name][0]
        bank = bank_cls(BitslicedEngine(n_lanes=33, fused=True, clocks_per_call=8))
        first = bank.seed(5).next_planes(40)
        misses_before = KERNEL_CACHE.stats()["misses"]
        again = bank.seed(5).next_planes(40)
        assert np.array_equal(first, again)
        assert KERNEL_CACHE.stats()["misses"] == misses_before


class TestKernelCacheInvariants:
    def test_same_configuration_same_kernel_object(self):
        a = get_kernel("trivium", np.uint64, 8)
        hits_before = KERNEL_CACHE.stats()["hits"]
        b = get_kernel("trivium", np.uint64, 8)
        assert a is b
        assert KERNEL_CACHE.stats()["hits"] == hits_before + 1

    def test_distinct_configurations_distinct_kernels(self):
        a = get_kernel("trivium", np.uint64, 8)
        assert get_kernel("trivium", np.uint32, 8) is not a
        assert get_kernel("trivium", np.uint64, 9) is not a
        assert get_kernel("grain", np.uint64, 8) is not a

    def test_kernel_metadata(self):
        k = get_kernel("grain", np.uint32, 6)
        assert (k.cipher, k.clocks, k.rows_per_clock) == ("grain", 6, 1)
        assert k.dtype == np.dtype(np.uint32)
        assert "def " in k.source or k.source  # emitted source is retained
        ka = get_kernel("aes128ctr", np.uint64, 2)
        assert ka.rows_per_clock == 128

    def test_unknown_cipher_rejected(self):
        with pytest.raises(SpecificationError):
            get_kernel("rc4", np.uint64, 8)
        with pytest.raises(SpecificationError):
            get_kernel("trivium", np.uint64, 0)

    def test_invalidate_forces_identical_recompile(self):
        cache = KernelCache()
        a = cache.get("mickey2", np.uint64, 4)
        assert cache.invalidate("mickey2") == 1
        b = cache.get("mickey2", np.uint64, 4)
        assert b is not a
        assert b.source == a.source
        assert cache.stats() == {"hits": 0, "misses": 2, "size": 1}

    def test_global_invalidation_rebuilds_bank_contexts(self):
        """Banks survive a cache flush mid-stream, bit for bit."""
        fused = BitslicedTrivium(
            BitslicedEngine(n_lanes=21, fused=True, clocks_per_call=8)
        ).seed(2)
        plain = BitslicedTrivium(BitslicedEngine(n_lanes=21)).seed(2)
        assert np.array_equal(fused.next_planes(20), plain.next_planes(20))
        KERNEL_CACHE.invalidate()
        assert np.array_equal(fused.next_planes(20), plain.next_planes(20))

    def test_default_clocks_constant(self):
        assert DEFAULT_CLOCKS_PER_CALL == 32
        eng = BitslicedEngine(n_lanes=8, fused=True)
        assert eng.clocks_per_call == DEFAULT_CLOCKS_PER_CALL


class TestPrefetchPipeline:
    @pytest.mark.parametrize("algorithm", ["trivium", "aes128ctr"])
    def test_prefetch_transparent(self, algorithm):
        a = BSRNG(algorithm, seed=11, lanes=64, prefetch=True)
        b = BSRNG(algorithm, seed=11, lanes=64, prefetch=False)
        assert a.random_bytes(200_000) == b.random_bytes(200_000)

    def test_spawn_children_prefetch(self):
        parent = BSRNG("trivium", seed=1, lanes=64, prefetch=True)
        ref = BSRNG("trivium", seed=1, lanes=64, prefetch=False)
        for a, b in zip(parent.spawn(2), ref.spawn(2)):
            assert a.random_bytes(10_000) == b.random_bytes(10_000)
