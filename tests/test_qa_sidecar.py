"""Sidecar integration: continuous QA wired into the serving engine.

The contract under test: a *defective generator* (the ``bias`` fault —
bytes that CRC-verify clean and reproduce identically on retry) is
invisible to every transfer-level defense and must be caught by the QA
sidecar, which latches ``/healthz`` with a ``qa:<plugin>`` event.  A
clean stream must sail through with zero latches, and QA overload must
degrade QA (dropped chunks), never serving.
"""

import queue
import time

import pytest

from repro.errors import SpecificationError
from repro.nist.result import TestResult
from repro.qa import QAPlugin, QASidecar, StreamingEvaluator, default_registry
from repro.qa.plugin_api import PluginResult
from repro.robust.faults import FAULT_PLAN_ENV, Fault, FaultPlan
from repro.robust.supervisor import SupervisorConfig
from repro.serve import ServeEngine, StreamConfig

STREAM = StreamConfig(algorithm="mickey2", seed=99, lanes=256)
WINDOW = 4096


def _sidecar(plugin_names=("Frequency", "Runs"), fail_alpha=1e-9, **kw):
    reg = default_registry()
    return QASidecar(
        StreamingEvaluator(
            [reg.get(n) for n in plugin_names],
            window_bytes=WINDOW,
            fail_alpha=fail_alpha,
        ),
        **kw,
    )


def _drain(sidecar, timeout=20.0):
    """Wait until the sidecar queue is empty (close() also drains)."""
    deadline = time.monotonic() + timeout
    while sidecar._queue.qsize() and time.monotonic() < deadline:
        time.sleep(0.01)


class TestEngineIntegration:
    def test_clean_inline_engine_stays_healthy(self):
        sidecar = _sidecar()
        engine = ServeEngine(STREAM, workers=0, qa=sidecar)
        engine.start()
        try:
            for i in range(8):
                engine.generate_range(i * WINDOW, WINDOW, chunk_id=i)
        finally:
            engine.close()
        assert engine.health.healthy
        qa = engine.status()["qa"]
        assert qa is not None
        assert qa["bytes_seen"] == 8 * WINDOW
        assert qa["windows_seen"] == 8
        assert qa["plugins"]["Frequency"]["windows"] == 8
        assert qa["dropped_chunks"] == 0

    @pytest.mark.slow
    def test_bias_fault_is_caught_only_by_qa(self, monkeypatch):
        # screen=False isolates the QA layer; CRC receipts stay ON to
        # prove the defect passes transfer verification untouched
        plan = FaultPlan(faults=(Fault(kind="bias", partition=0, bias_mask=0xFE),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        sidecar = _sidecar()
        engine = ServeEngine(
            STREAM,
            workers=1,
            screen=False,
            qa=sidecar,
            supervision=SupervisorConfig(timeout=60.0, max_retries=2, verify_crc=True),
        )
        engine.start()
        try:
            for i in range(4):
                data = engine.generate_range(i * WINDOW, WINDOW, chunk_id=i)
                assert all(b & 0x01 == 0 for b in data[:64])  # the bias, served
        finally:
            engine.close()
        assert not engine.health.healthy
        events = engine.health.to_dict()["events"]
        assert any(e["test"].startswith("qa:") for e in events)
        qa_event = next(e for e in events if e["test"].startswith("qa:"))
        assert "detail" in qa_event and "p_value" in qa_event["detail"]
        # no transfer-level defense fired: the bytes were "valid"
        chunks = engine.status()["chunks"]
        assert chunks["crc_rejects"] == 0 and chunks["screen_rejects"] == 0

    def test_engine_without_qa_reports_none(self):
        engine = ServeEngine(STREAM, workers=0)
        engine.start()
        try:
            engine.generate_range(0, 1024)
        finally:
            engine.close()
        assert engine.status()["qa"] is None


class TestSidecarMechanics:
    def test_bind_latches_health_with_plugin_detail(self):
        def zero_trap(bits):
            return PluginResult(status="ok", p_values=(0.0,))

        sidecar = QASidecar(
            StreamingEvaluator([QAPlugin("ZeroTrap", zero_trap)], window_bytes=64)
        )

        class FakeHealth:
            def __init__(self):
                self.latches = []

            def latch(self, test, detail=None):
                self.latches.append((test, detail))

        health = FakeHealth()
        sidecar.bind(health)
        sidecar.start()
        sidecar.observe(b"\x00" * 64)
        sidecar.close()
        assert health.latches and health.latches[0][0] == "qa:ZeroTrap"
        assert health.latches[0][1]["window"] == 0

    def test_full_queue_drops_from_qa_not_from_serving(self):
        def slow(bits):
            time.sleep(0.05)
            return TestResult("slow", [1.0])

        sidecar = QASidecar(
            StreamingEvaluator([QAPlugin("Slow", slow)], window_bytes=64),
            queue_chunks=1,
        )
        sidecar.start()
        try:
            for _ in range(50):
                sidecar.observe(b"\x55" * 64)  # far faster than 50ms/window
        finally:
            sidecar.close(timeout=30)
        assert sidecar.dropped_chunks > 0
        assert sidecar.status()["dropped_chunks"] == sidecar.dropped_chunks
        # every chunk that entered the queue was evaluated, none lost
        evaluated = sidecar.evaluator.windows_seen
        assert evaluated + sidecar.dropped_chunks == 50

    def test_plugin_crash_is_contained(self):
        def buggy(bits):
            raise ValueError("plugin bug")

        # min_bits matches the window so the crash is NOT a floor skip
        sidecar = QASidecar(
            StreamingEvaluator([QAPlugin("Buggy", buggy, min_bits=512)], window_bytes=64)
        )
        sidecar.start()
        sidecar.observe(b"\xaa" * 64)
        sidecar.close()
        assert sidecar.errors == 1
        assert sidecar.healthy  # a buggy plugin is not an unhealthy stream
        assert sidecar.status()["sidecar_errors"] == 1

    def test_close_is_idempotent_and_observe_after_close_is_noop(self):
        sidecar = _sidecar()
        sidecar.start()
        sidecar.close()
        sidecar.close()
        sidecar.observe(b"\x00" * WINDOW)
        assert sidecar.evaluator.bytes_seen == 0

    def test_queue_chunks_validated(self):
        with pytest.raises(SpecificationError):
            _sidecar(queue_chunks=0)
