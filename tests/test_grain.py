"""Grain v1: specification conformance and bitsliced cross-validation."""

import numpy as np
import pytest

from repro.ciphers.grain import INIT_CLOCKS, IV_BITS, KEY_BITS, GrainV1
from repro.ciphers.grain_bitsliced import BitslicedGrain
from repro.core.engine import BitslicedEngine
from repro.errors import KeyScheduleError


class TestReference:
    def test_deterministic(self):
        mk = lambda: GrainV1("0123456789abcdef0123", "0011223344556677")
        assert np.array_equal(mk().keystream(128), mk().keystream(128))

    def test_lfsr_padding_is_ones(self):
        g = GrainV1.__new__(GrainV1)
        g.lfsr = np.zeros(80, dtype=np.uint8)
        g.nfsr = np.zeros(80, dtype=np.uint8)
        g.nfsr[:] = 0
        g.lfsr[:64] = 0
        g.lfsr[64:] = 1
        # after manual load the padding region is all ones per spec
        assert g.lfsr[64:].all()

    def test_key_iv_lengths(self):
        with pytest.raises(KeyScheduleError):
            GrainV1("00" * 9, "00" * 8)
        with pytest.raises(KeyScheduleError):
            GrainV1("00" * 10, "00" * 7)

    def test_key_sensitivity(self):
        a = GrainV1("aa" * 10, "00" * 8).keystream(256)
        b = GrainV1("ab" * 10, "00" * 8).keystream(256)
        assert 0.3 < np.mean(a != b) < 0.7

    def test_iv_sensitivity(self):
        a = GrainV1("aa" * 10, "00" * 8).keystream(256)
        b = GrainV1("aa" * 10, "01" * 8).keystream(256)
        assert 0.3 < np.mean(a != b) < 0.7

    def test_balanced_output(self):
        ks = GrainV1("137f0a2b4c5d6e8f9a0b", "deadbeefcafef00d").keystream(4096)
        assert abs(ks.mean() - 0.5) < 0.05

    def test_init_clocks_constant(self):
        assert INIT_CLOCKS == 2 * KEY_BITS


class TestBitslicedCrossValidation:
    def test_lanes_equal_reference(self, small_engine, rng):
        n = small_engine.n_lanes
        keys = rng.integers(0, 2, size=(n, KEY_BITS), dtype=np.uint8)
        ivs = rng.integers(0, 2, size=(n, IV_BITS), dtype=np.uint8)
        bank = BitslicedGrain(small_engine)
        bank.load(keys, ivs)
        ks = bank.keystream_bits(48)
        for lane in range(n):
            ref = GrainV1(keys[lane], ivs[lane])
            assert np.array_equal(ks[lane], ref.keystream(48)), f"lane {lane}"

    def test_shape_validation(self):
        eng = BitslicedEngine(n_lanes=8, dtype=np.uint8)
        bank = BitslicedGrain(eng)
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((8, 80), dtype=np.uint8), np.zeros((8, 63), dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.load(np.zeros((7, 80), dtype=np.uint8), np.zeros((8, 64), dtype=np.uint8))

    def test_generation_before_load_rejected(self):
        bank = BitslicedGrain(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        with pytest.raises(KeyScheduleError):
            bank.next_planes(1)

    def test_seed_lanes_distinct(self):
        bank = BitslicedGrain(BitslicedEngine(n_lanes=16, dtype=np.uint16)).seed(3)
        lanes = bank.keystream_bits(256)
        assert len({lane.tobytes() for lane in lanes}) == 16

    def test_gates_lighter_than_mickey(self):
        from repro.ciphers.mickey_bitsliced import BitslicedMickey2

        g = BitslicedGrain(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        m = BitslicedMickey2(BitslicedEngine(n_lanes=8, dtype=np.uint8))
        assert g.gates_per_output_bit() < m.gates_per_output_bit()
