"""Paper-scale soak tests — opt in with ``REPRO_FULL=1``.

These mirror the CI-scale assertions elsewhere at the paper's actual
workload sizes (1 Mbit sequences, the full 15-test battery, million-bit
cipher cross-validation).  They take minutes, not seconds, which is why
they are gated; the default suite stays fast.
"""

import os

import numpy as np
import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

pytestmark = pytest.mark.skipif(not FULL, reason="set REPRO_FULL=1 for paper-scale runs")


class TestFullScaleNIST:
    @pytest.mark.parametrize("alg", ["mickey2", "grain", "trivium", "aes128ctr"])
    def test_one_megabit_all_fifteen(self, alg):
        """One 1 Mbit sequence per cipher through all 15 tests — every
        test must run (nothing skipped) and pass at alpha=0.001."""
        from repro import BSRNG
        from repro.errors import InsufficientDataError
        from repro.nist import ALL_TESTS

        bits = BSRNG(alg, seed=0xF0, lanes=4096).random_bits(1_000_000)
        for name, fn in ALL_TESTS.items():
            try:
                r = fn(bits)
            except InsufficientDataError:
                # excursions tests are "not applicable" on sequences whose
                # random walk has < 500 zero crossings — sts behaviour
                assert name.startswith("RandomExcursions"), (alg, name)
                continue
            assert r.p_value >= 0.001, (alg, name, r.p_value)

    def test_mickey_battery_paper_shape(self):
        """A 100 x 1 Mbit battery (a tenth of the paper's 1000) with the
        full NIST aggregation criteria."""
        from repro import BSRNG
        from repro.nist import run_suite

        rng = BSRNG("mickey2", seed=0xB5B5, lanes=8192)
        report = run_suite(lambda i: rng.random_bits(1_000_000), 100)
        assert not report.skipped
        assert report.all_passed, report.to_table()


class TestFullScaleCrossValidation:
    def test_mickey_reference_one_megabit(self):
        """Bitsliced vs bit-serial MICKEY over a million keystream bits."""
        from repro.ciphers.mickey import Mickey2
        from repro.ciphers.mickey_bitsliced import BitslicedMickey2
        from repro.core.engine import BitslicedEngine

        rng = np.random.default_rng(1)
        key = rng.integers(0, 2, (1, 80), dtype=np.uint8)
        iv = rng.integers(0, 2, (1, 40), dtype=np.uint8)
        bank = BitslicedMickey2(BitslicedEngine(n_lanes=1, dtype=np.uint8))
        bank.load(key, iv)
        got = bank.keystream_bits(1_000_000)[0]
        ref = Mickey2(key[0], iv=iv[0]).keystream(1_000_000)
        assert np.array_equal(got, ref)

    def test_trivium_reference_one_megabit(self):
        from repro.ciphers.trivium import Trivium
        from repro.ciphers.trivium_bitsliced import BitslicedTrivium
        from repro.core.engine import BitslicedEngine

        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2, (1, 80), dtype=np.uint8)
        ivs = rng.integers(0, 2, (1, 80), dtype=np.uint8)
        bank = BitslicedTrivium(BitslicedEngine(n_lanes=1, dtype=np.uint8))
        bank.load(keys, ivs)
        got = bank.keystream_bits(1_000_000)[0]
        ref = Trivium(keys[0], ivs[0]).keystream(1_000_000)
        assert np.array_equal(got, ref)


class TestFullScaleStream:
    def test_gigabit_stream_consistency(self):
        """125 MB drawn two ways must agree byte for byte."""
        from repro import BSRNG

        total = 125_000_000
        a = BSRNG("trivium", seed=3, lanes=1 << 15)
        chunks = []
        remaining = total
        while remaining:
            take = min(remaining, 7_654_321)
            chunks.append(a.random_bytes(take))
            remaining -= take
        b = BSRNG("trivium", seed=3, lanes=1 << 15).random_bytes(total)
        assert b"".join(chunks) == b
