"""MICKEY 2.0 register constants (Babbage & Dodd, eSTREAM 2006).

The four 100-bit sequences below — the R feedback taps and the S
register's COMP0/COMP1/FB0/FB1 sequences — are stored as they appear in
the eSTREAM reference implementation: bit ``i`` of the sequence lives in
32-bit word ``i // 32`` at position ``i % 32``.

The R tap words are cross-checked (in ``tests/test_mickey.py``) against
the spec's published tap list::

    RTAPS = {0,1,3,4,5,6,9,12,13,16,19,20,21,22,25,28,37,38,41,42,45,46,
             50,52,54,56,58,60,61,63,64,65,66,67,71,72,79,80,81,82,87,88,
             89,90,91,92,94,95,96,97}
"""

from __future__ import annotations

import numpy as np

__all__ = ["R_TAPS_BITS", "COMP0_BITS", "COMP1_BITS", "FB0_BITS", "FB1_BITS", "RTAPS"]

_R_MASK_WORDS = (0x1279327B, 0xB5546660, 0xDF87818F, 0x00000003)
_COMP0_WORDS = (0x6AA97A30, 0x7942A809, 0x057EBFEA, 0x00000006)
_COMP1_WORDS = (0xDD629E9A, 0xE3A21D63, 0x91C23DD7, 0x00000001)
_FB0_WORDS = (0x9FFA7FAF, 0xAF4A9381, 0x9CEC5802, 0x00000001)
_FB1_WORDS = (0x4C8CB877, 0x4911B063, 0x40FBC52B, 0x00000008)


def _expand(words: tuple[int, ...], n_bits: int = 100) -> np.ndarray:
    bits = np.zeros(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        bits[i] = (words[i // 32] >> (i % 32)) & 1
    return bits


R_TAPS_BITS = _expand(_R_MASK_WORDS)
COMP0_BITS = _expand(_COMP0_WORDS)
COMP1_BITS = _expand(_COMP1_WORDS)
FB0_BITS = _expand(_FB0_WORDS)
FB1_BITS = _expand(_FB1_WORDS)

#: The spec's tap list, as a frozenset of register indices.
RTAPS = frozenset(int(i) for i in np.flatnonzero(R_TAPS_BITS))
