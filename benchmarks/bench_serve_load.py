#!/usr/bin/env python
"""Closed-loop load benchmark for the ``repro serve`` daemon.

Boots a daemon in-process (ephemeral port, no journal), then drives
``GET /v1/bytes`` with the async load generator twice:

* concurrency 1 — the single-client baseline;
* concurrency N (``--concurrency``, default 8) — the contended run.

Headline numbers are requests/s and p50/p99 latency (measured from the
load generator's ``serve_load.request`` obs spans).  The regression-gated
ratio is **throughput scaling** — contended rps over single-client rps —
which is a property of the server's concurrency architecture (leases,
bounded queues, worker pool) rather than of the runner's absolute CPU
speed, so it transfers across machines the way the fused-kernel speedups
do.  On a single-core runner the ratio sits below 1 — concurrency can
only add scheduling overhead there — so the committed baseline encodes
the floor for that shape and the gate catches *drops* (a serialization
or per-chunk-rebuild regression pushes it far lower).  The run also
asserts the served leases form a non-overlapping set.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_load.py
    python tools/check_bench_regression.py \
        benchmarks/results/BENCH_serve_load.json \
        benchmarks/baselines/BENCH_serve_load.json --tolerance 0.35
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import sys
import threading

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _emit import emit_bench  # noqa: E402

from repro.obs.tracing import Tracer  # noqa: E402
from repro.serve import DaemonConfig, ServeDaemon, ServeEngine, StreamConfig  # noqa: E402
from repro.serve.loadgen import run_load  # noqa: E402


def start_daemon(args) -> tuple[ServeDaemon, threading.Thread]:
    engine = ServeEngine(
        StreamConfig(algorithm=args.algorithm, seed=7, lanes=args.lanes),
        workers=args.workers,
    )
    daemon = ServeDaemon(
        engine, DaemonConfig(port=0, chunk_bytes=args.chunk_bytes)
    )
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()), daemon=True)
    thread.start()
    if not daemon.started.wait(30):
        raise RuntimeError("daemon failed to start")
    return daemon, thread


def check_partition(leases: list[tuple[int, int]]) -> None:
    """Served ranges must never overlap (the lease invariant, end to end)."""
    spans = sorted(leases)
    for (off_a, len_a), (off_b, _) in zip(spans, spans[1:]):
        if off_a + len_a > off_b:
            raise AssertionError(
                f"overlapping leases: [{off_a}, {off_a + len_a}) and offset {off_b}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-a", "--algorithm", default="trivium")
    parser.add_argument("-l", "--lanes", type=int, default=4096)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25, help="requests per client")
    parser.add_argument("--n-bytes", type=int, default=1 << 16)
    parser.add_argument("--chunk-bytes", type=int, default=1 << 16)
    args = parser.parse_args(argv)

    daemon, thread = start_daemon(args)
    host, port = daemon.config.host, daemon.bound_port
    print(
        f"serve_load: {args.algorithm}, {args.workers} workers, "
        f"{args.n_bytes} B/request, {args.requests} requests/client"
    )
    try:
        # warm the worker pool and kernel caches off the clock
        asyncio.run(
            run_load(host, port, concurrency=1, requests_per_client=3, n_bytes=args.n_bytes)
        )
        base = asyncio.run(
            run_load(
                host,
                port,
                concurrency=1,
                requests_per_client=args.requests,
                n_bytes=args.n_bytes,
                tracer=Tracer(),
            )
        )
        loaded = asyncio.run(
            run_load(
                host,
                port,
                concurrency=args.concurrency,
                requests_per_client=args.requests,
                n_bytes=args.n_bytes,
                tracer=Tracer(),
            )
        )
    finally:
        daemon.shutdown_threadsafe()
        thread.join(15)

    check_partition(base.leases + loaded.leases)
    if base.errors or loaded.errors:
        print(f"errors: baseline {base.errors}, loaded {loaded.errors}", file=sys.stderr)
        return 1

    scaling = loaded.rps / base.rps if base.rps else 0.0
    print(f"{'run':<14}{'rps':>10}{'p50 ms':>10}{'p99 ms':>10}")
    print(f"{'c=1':<14}{base.rps:>10.1f}{base.p50_ms:>10.2f}{base.p99_ms:>10.2f}")
    print(
        f"{'c=' + str(args.concurrency):<14}{loaded.rps:>10.1f}"
        f"{loaded.p50_ms:>10.2f}{loaded.p99_ms:>10.2f}"
    )
    print(f"throughput scaling: {scaling:.2f}x over single client")

    gbps = 8 * loaded.bytes_received / loaded.wall_s / 1e9
    path = emit_bench(
        "serve_load",
        params={
            "cpu_count": os.cpu_count(),
            "algorithm": args.algorithm,
            "lanes": args.lanes,
            "workers": args.workers,
            "concurrency": args.concurrency,
            "requests_per_client": args.requests,
            "n_bytes": args.n_bytes,
            "chunk_bytes": args.chunk_bytes,
        },
        gbps=gbps,
        wall_s=loaded.wall_s,
        metrics={
            "rps_c1": base.rps,
            "rps_loaded": loaded.rps,
            "p50_ms_c1": base.p50_ms,
            "p99_ms_c1": base.p99_ms,
            "p50_ms_loaded": loaded.p50_ms,
            "p99_ms_loaded": loaded.p99_ms,
            "speedup": {"throughput_scaling": scaling},
            "geomean_speedup": scaling,
        },
    )
    print(f"emitted {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
