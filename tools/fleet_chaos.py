#!/usr/bin/env python
"""CI chaos drill for the fleet-backed ``repro serve`` daemon.

Boots the real CLI entry point with ``--fleet 4`` and a scripted
``REPRO_FAULT_PLAN`` that sabotages two of the four members mid-stream —
one crashes outright after its second job, one goes heartbeat-silent
from the start — then proves the service absorbed the losses:

1. wait for the parseable ``repro-serve listening on host:port`` line;
2. run concurrent closed-loop clients against ``/v1/bytes`` while the
   faults fire; no client may see an error;
3. assert the granted leases never overlap;
4. assert every client payload is bit-identical to an offline BSRNG
   positioned at the announced lease offset (``skip_bytes`` replay) —
   eviction and lease reassignment must be invisible in the bytes;
5. require ``/v1/status`` to show the evictions and
   ``/metrics`` to carry ``repro_fleet_evictions_total`` /
   ``repro_fleet_workers`` reflecting them, lint-clean;
6. require the evictions to have left readable flight-recorder dumps
   under ``REPRO_FLIGHT_DIR`` (the controller's black box, plus the
   crashed member's own ``worker-crash`` dump);
7. send SIGTERM and require a graceful drain with exit status 0;
8. load the ``--trace-out`` Chrome trace the daemon wrote on exit and
   require one traced request to stitch the daemon's ``serve.request``
   span, the controller's ``fleet.read_range`` span and chunk spans
   from >= 2 distinct worker *processes* under a single trace id with
   every parent link resolvable.

Artifacts (flight dumps, trace JSON, metrics snapshot) are left under
``--artifacts-dir`` for CI upload.

Exit status: 0 = all green, 1 = any check failed.

Usage::

    PYTHONPATH=src python tools/fleet_chaos.py [--algorithm trivium]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.promlint import lint  # noqa: E402
from repro.robust.faults import Fault, FaultPlan  # noqa: E402
from repro.serve.engine import StreamConfig  # noqa: E402
from repro.serve.loadgen import run_load  # noqa: E402

READY_RE = re.compile(r"^repro-serve listening on ([\d.]+):(\d+)\s*$")


def fail(msg: str) -> "NoReturn":  # noqa: F821 - documentation type only
    print(f"fleet_chaos: FAIL — {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="trivium")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--lanes", type=int, default=1024)
    parser.add_argument("--fleet", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--n-bytes", type=int, default=32768)
    parser.add_argument(
        "--artifacts-dir", default="chaos-artifacts",
        help="flight dumps, trace JSON and metrics snapshot land here "
        "(default ./chaos-artifacts)",
    )
    args = parser.parse_args(argv)

    artifacts = pathlib.Path(args.artifacts_dir)
    flight_dir = artifacts / "flight"
    trace_path = artifacts / "trace.json"
    metrics_path = artifacts / "metrics.json"
    flight_dir.mkdir(parents=True, exist_ok=True)

    plan = FaultPlan(
        faults=(
            # member 0 dies after its second job (carrier loss mid-stream)
            Fault("crash", partition=0, attempt=2),
            # member 1 computes but never heartbeats (protocol silence)
            Fault("hb_silence", partition=1, attempt=0),
        ),
        seed=29,
    )
    env = dict(os.environ)
    root = pathlib.Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    env["REPRO_FAULT_PLAN"] = plan.to_json()
    env["REPRO_FLIGHT_DIR"] = str(flight_dir)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "-a", args.algorithm, "-s", str(args.seed), "-l", str(args.lanes),
            "--fleet", str(args.fleet),
            "--heartbeat-interval", "0.2",
            "--heartbeat-timeout", "2.0",
            # stream in 64 KiB chunks but lease 16 KiB to the fleet: one
            # generation call fans four concurrent jobs over the members,
            # which is what lets a single request's trace span >= 2 workers
            "--chunk-bytes", "65536",
            "--fleet-chunk-bytes", "16384",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        host = port = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                fail(f"daemon exited early with {proc.returncode}")
            m = READY_RE.match(line.strip())
            if m:
                host, port = m.group(1), int(m.group(2))
                break
        if port is None:
            fail("no readiness line within 60s")
        print(f"fleet_chaos: daemon ready on {host}:{port}, fleet of {args.fleet}")

        result = asyncio.run(
            run_load(
                host,
                port,
                concurrency=args.clients,
                requests_per_client=args.requests,
                n_bytes=args.n_bytes,
            )
        )
        if result.errors:
            fail(f"{result.errors} client-visible errors (worker loss leaked)")
        expected = args.clients * args.requests
        if result.requests != expected:
            fail(f"completed {result.requests}/{expected} requests")
        print(
            f"fleet_chaos: {result.requests} requests under chaos, "
            f"{result.rps:.1f} rps, p99 {result.p99_ms:.1f} ms, 0 errors"
        )

        spans = sorted(result.leases)
        for (off_a, len_a), (off_b, _) in zip(spans, spans[1:]):
            if off_a + len_a > off_b:
                fail(f"overlapping leases at offsets {off_a} and {off_b}")
        print(f"fleet_chaos: {len(spans)} leases, non-overlapping")

        # give the liveness deadline time to fire on the silent member,
        # then keep a little traffic flowing so the controller pumps
        settle_deadline = time.time() + 20
        evictions_seen = 0
        while time.time() < settle_deadline:
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/status", timeout=30
            ) as resp:
                status = json.load(resp)
            fleet = status.get("engine", status).get("fleet") or status.get("fleet")
            if fleet is None:
                fail("/v1/status carries no fleet section")
            evictions_seen = fleet["counters"]["evictions"]
            if evictions_seen >= 2:
                break
            urllib.request.urlopen(
                f"http://{host}:{port}/v1/bytes?n=16384", timeout=30
            ).read()
            time.sleep(0.5)
        if evictions_seen < 2:
            fail(f"expected >= 2 evictions (crash + silence), saw {evictions_seen}")
        reasons = {
            w["evicted_reason"] for w in fleet["workers"] if w["state"] == "evicted"
        }
        print(
            f"fleet_chaos: {evictions_seen} evictions ({', '.join(sorted(reasons))}), "
            f"{fleet['counters']['reassignments']} leases reassigned"
        )

        # bit-identity: replay one served range offline via skip_bytes
        cfg = StreamConfig(algorithm=args.algorithm, seed=args.seed, lanes=args.lanes)
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/bytes?n=4096", timeout=30
        ) as resp:
            follow_off = int(resp.headers["X-Repro-Lease-Offset"])
            follow = resp.read()
        rng = cfg.make_rng()
        rng.skip_bytes(follow_off)
        if rng.read(4096) != follow:
            fail(f"served bytes at offset {follow_off} differ from offline stream")
        print("fleet_chaos: offline skip_bytes replay bit-identical")

        with urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=30) as resp:
            exposition = resp.read().decode()
        problems = lint(exposition)
        if problems:
            fail(f"/metrics lint problems: {problems}")
        if "repro_fleet_evictions_total" not in exposition:
            fail("eviction counter missing from /metrics")
        if "repro_fleet_workers" not in exposition:
            fail("membership gauge missing from /metrics")
        print("fleet_chaos: /metrics lint clean, eviction + membership series present")

        # the evictions must have left readable flight dumps (the black
        # box written by the controller at eviction time)
        dumps = sorted(flight_dir.glob("flight-*.json"))
        if not dumps:
            fail(f"no flight dumps under {flight_dir} despite {evictions_seen} evictions")
        eviction_dumps = []
        for dump_path in dumps:
            try:
                payload = json.loads(dump_path.read_text())
            except json.JSONDecodeError as exc:
                fail(f"unreadable flight dump {dump_path}: {exc}")
            if payload.get("reason") == "eviction" and any(
                e.get("kind") == "eviction" for e in payload.get("entries", [])
            ):
                eviction_dumps.append(dump_path)
        if not eviction_dumps:
            fail(f"none of {len(dumps)} flight dumps records an eviction")
        print(
            f"fleet_chaos: {len(dumps)} flight dumps, "
            f"{len(eviction_dumps)} recording evictions"
        )

        # one focused multi-chunk request whose trace we verify post-exit
        # (4 chunks spread over the live members by least-loaded dispatch)
        with urllib.request.urlopen(
            f"http://{host}:{port}/v1/bytes?n=65536", timeout=60
        ) as resp:
            focus_trace_id = resp.headers["X-Repro-Trace-Id"]
            resp.read()
        print(f"fleet_chaos: focused traced request, trace_id {focus_trace_id}")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        if rc != 0:
            fail(f"daemon exited {rc} after SIGTERM (expected graceful 0)")
        print("fleet_chaos: graceful drain, exit 0")

        # the daemon wrote its Chrome trace on the way out: one request's
        # spans must stitch daemon + controller + >= 2 worker processes
        if not trace_path.exists():
            fail(f"daemon left no trace file at {trace_path}")
        events = json.loads(trace_path.read_text())["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        focus = [e for e in spans if e["args"].get("trace_id") == focus_trace_id]
        if not focus:
            fail(f"trace file has no spans for trace_id {focus_trace_id}")
        names = {e["name"] for e in focus}
        for required in ("serve.request", "fleet.read_range", "fleet.worker_chunk"):
            if required not in names:
                fail(f"focused trace is missing a {required} span (has {sorted(names)})")
        daemon_pids = {
            e["pid"] for e in focus if e["name"] in ("serve.request", "fleet.read_range")
        }
        worker_pids = {e["pid"] for e in focus if e["name"] == "fleet.worker_chunk"}
        if len(worker_pids) < 2:
            fail(f"focused trace spans only {len(worker_pids)} worker process(es)")
        if worker_pids & daemon_pids:
            fail("worker chunk spans claim the daemon's pid — merge mislabelled")
        span_ids = {e["args"].get("span_id") for e in focus}
        for e in focus:
            parent = e["args"].get("parent_id")
            if parent is not None and parent not in span_ids:
                fail(f"span {e['name']} has unresolvable parent {parent}")
        print(
            f"fleet_chaos: trace stitched — daemon pid {sorted(daemon_pids)}, "
            f"{len(worker_pids)} worker pids, {len(focus)} spans, parent links OK"
        )
        print("fleet_chaos: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
