"""Unit tests for the core bitsliced transpose and state container."""

import numpy as np
import pytest

from repro.core.bitslice import (
    BitslicedState,
    bitslice,
    bitslice_bytes,
    broadcast_bit,
    lane_mask,
    n_words_for_lanes,
    unbitslice,
    unbitslice_bytes,
    word_width,
)
from repro.errors import BitsliceLayoutError


class TestWordGeometry:
    @pytest.mark.parametrize("dt,w", [(np.uint8, 8), (np.uint16, 16), (np.uint32, 32), (np.uint64, 64)])
    def test_word_width(self, dt, w):
        assert word_width(dt) == w

    def test_unsupported_dtype(self):
        with pytest.raises(BitsliceLayoutError):
            word_width(np.int32)

    @pytest.mark.parametrize("lanes,dt,words", [(1, np.uint64, 1), (64, np.uint64, 1), (65, np.uint64, 2), (8, np.uint8, 1), (9, np.uint8, 2)])
    def test_n_words(self, lanes, dt, words):
        assert n_words_for_lanes(lanes, dt) == words

    def test_zero_lanes_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            n_words_for_lanes(0)


class TestTranspose:
    def test_documented_example(self):
        planes = bitslice([[1, 0], [1, 1], [0, 1]], dtype=np.uint8)
        assert planes[:, 0].tolist() == [3, 6]

    @pytest.mark.parametrize("n_lanes", [1, 7, 8, 63, 64, 65, 200])
    def test_roundtrip_lane_counts(self, rng, dtype, n_lanes):
        bits = rng.integers(0, 2, size=(n_lanes, 33), dtype=np.uint8)
        assert np.array_equal(unbitslice(bitslice(bits, dtype=dtype), n_lanes), bits)

    def test_lane_k_is_bit_k(self, dtype):
        width = word_width(dtype)
        bits = np.zeros((width, 4), dtype=np.uint8)
        bits[3, 2] = 1  # lane 3, state bit 2
        planes = bitslice(bits, dtype=dtype)
        assert planes[2, 0] == np.asarray(1 << 3, dtype=dtype)
        assert planes[0, 0] == 0 and planes[1, 0] == 0 and planes[3, 0] == 0

    def test_padding_lanes_zero(self):
        bits = np.ones((3, 5), dtype=np.uint8)
        planes = bitslice(bits, dtype=np.uint8)
        assert np.all(planes == 0b111)

    def test_non_2d_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            bitslice([1, 0, 1])

    def test_unbitslice_lane_overflow_rejected(self):
        planes = bitslice(np.ones((4, 2), dtype=np.uint8), dtype=np.uint8)
        with pytest.raises(BitsliceLayoutError):
            unbitslice(planes, 9)


class TestByteTranspose:
    def test_roundtrip(self, rng, dtype):
        rows = rng.integers(0, 256, size=(13, 7), dtype=np.uint8)
        planes = bitslice_bytes(rows, dtype=dtype)
        assert planes.shape[0] == 56
        assert np.array_equal(unbitslice_bytes(planes, 13), rows)

    def test_plane_layout(self):
        # byte 1 bit 0 of lane 0 -> plane 8
        rows = np.zeros((1, 2), dtype=np.uint8)
        rows[0, 1] = 1
        planes = bitslice_bytes(rows, dtype=np.uint8)
        assert planes[8, 0] == 1 and planes.sum() == 1

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(BitsliceLayoutError):
            unbitslice_bytes(np.zeros((7, 1), dtype=np.uint8), 1)


class TestConstants:
    def test_broadcast(self, dtype):
        assert np.all(broadcast_bit(1, 3, dtype) == np.iinfo(dtype).max)
        assert np.all(broadcast_bit(0, 3, dtype) == 0)

    def test_broadcast_invalid(self):
        with pytest.raises(BitsliceLayoutError):
            broadcast_bit(2, 1)

    def test_lane_mask_partial(self):
        m = lane_mask(10, 2, np.uint8)
        assert m[0] == 0xFF and m[1] == 0b11

    def test_lane_mask_full(self):
        m = lane_mask(16, 2, np.uint8)
        assert np.all(m == 0xFF)


class TestBitslicedState:
    def test_from_bits_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(10, 20), dtype=np.uint8)
        st = BitslicedState.from_bits(bits)
        assert st.n_bits == 20 and st.n_lanes == 10
        assert np.array_equal(st.to_bits(), bits)

    def test_lane_extraction(self, rng):
        bits = rng.integers(0, 2, size=(10, 20), dtype=np.uint8)
        st = BitslicedState.from_bits(bits)
        for k in (0, 5, 9):
            assert np.array_equal(st.lane(k), bits[k])

    def test_lane_out_of_range(self, rng):
        st = BitslicedState.from_bits(rng.integers(0, 2, size=(4, 4), dtype=np.uint8))
        with pytest.raises(BitsliceLayoutError):
            st.lane(4)

    def test_bad_lane_count(self):
        with pytest.raises(BitsliceLayoutError):
            BitslicedState(np.zeros((4, 1), dtype=np.uint8), 9)
