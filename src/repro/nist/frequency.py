"""SP 800-22 tests 1 & 2: Frequency (monobit) and Block Frequency."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SpecificationError
from repro.nist._utils import check_bits, erfc, igamc
from repro.nist.result import TestResult

__all__ = ["frequency_test", "block_frequency_test"]


def frequency_test(bits) -> TestResult:
    """Monobit test: are ones and zeros balanced overall?

    ``S_n = Σ(2ε_i − 1)``; ``p = erfc(|S_n| / √n / √2)``.
    """
    arr = check_bits(bits, 100, "frequency")
    n = arr.size
    s = 2 * int(arr.sum()) - n
    s_obs = abs(s) / math.sqrt(n)
    p = float(erfc(s_obs / math.sqrt(2.0)))
    return TestResult("Frequency", [p], {"S_n": s, "s_obs": s_obs, "n": n})


def block_frequency_test(bits, block_size: int = 128) -> TestResult:
    """Block frequency: proportion of ones within M-bit blocks.

    ``χ² = 4M Σ(π_i − 1/2)²``; ``p = igamc(N/2, χ²/2)``.
    """
    if block_size < 2:
        raise SpecificationError("block_size must be >= 2")
    arr = check_bits(bits, block_size, "block_frequency")
    n = arr.size
    n_blocks = n // block_size
    trimmed = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    pi = trimmed.mean(axis=1)
    chi2 = 4.0 * block_size * float(np.sum((pi - 0.5) ** 2))
    p = igamc(n_blocks / 2.0, chi2 / 2.0)
    return TestResult(
        "BlockFrequency",
        [p],
        {"chi2": chi2, "n_blocks": n_blocks, "block_size": block_size},
    )
