"""GF(2) algebra: polynomials, LFSR period theory, linear algebra.

The theory substrate behind the LFSR machinery (§2.2): primitive
polynomials guarantee the maximal ``2^n - 1`` period, Berlekamp–Massey
recovers linear complexity (also the core of NIST test #10), and
bit-packed Gaussian elimination provides the matrix rank used by NIST
test #5.
"""

from repro.gf2.linalg import gf2_matrix_rank, pack_rows, rank_distribution
from repro.gf2.lfsr_theory import berlekamp_massey, lfsr_period, linear_complexity_profile
from repro.gf2.poly import (
    poly_degree,
    poly_divmod,
    poly_from_taps,
    poly_gcd,
    poly_is_irreducible,
    poly_is_primitive,
    poly_mod,
    poly_mul,
    poly_powmod,
    taps_from_poly,
)

__all__ = [
    "poly_mul",
    "poly_mod",
    "poly_divmod",
    "poly_gcd",
    "poly_powmod",
    "poly_degree",
    "poly_is_irreducible",
    "poly_is_primitive",
    "poly_from_taps",
    "taps_from_poly",
    "berlekamp_massey",
    "linear_complexity_profile",
    "lfsr_period",
    "gf2_matrix_rank",
    "pack_rows",
    "rank_distribution",
]
