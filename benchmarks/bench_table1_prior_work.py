"""E1 — Table 1: previously proposed GPU PRNG implementations.

Regenerates the paper's Table 1 with the normalized Gbps/GFLOPS column
*recomputed* from the claimed Gbps and the device rating, verifying the
paper's arithmetic rather than transcribing it.
"""

from _emit import emit_bench
from conftest import emit_table

from repro.gpu.priorwork import PRIOR_WORK


def render_table1() -> list[str]:
    lines = [
        f"{'Ref':<24}{'Year':>6}{'GPU':>10}{'GFLOPS':>10}{'Method':>12}{'Gbps':>9}{'Gbps/GFLOPS':>14}",
        "-" * 85,
    ]
    for row in PRIOR_WORK:
        lines.append(
            f"{row.reference:<24}{row.year:>6}{row.gpu_name:>10}{row.gpu_gflops:>10.1f}"
            f"{row.method:>12}{row.gbps:>9.2f}{row.normalized:>14.4f}"
        )
    return lines


def test_table1_prior_work(benchmark):
    lines = benchmark(render_table1)
    emit_table("table1_prior_work", lines)
    emit_bench(
        "table1_prior_work",
        metrics={
            "normalized_gbps_per_gflops": {
                f"{row.method} ({row.year})": row.normalized for row in PRIOR_WORK
            }
        },
    )
    # The paper's printed normalization, re-derived (4-decimal agreement).
    printed = [0.0752, 0.0199, 0.0562, 0.0020, 0.3922, 0.0278]
    for row, expect in zip(PRIOR_WORK, printed):
        assert abs(row.normalized - expect) < 1e-4
