"""Property-based tests (hypothesis) on the core data structures:
bitslice transposes, bit packing, GF(2) algebra, CRC linearity, seed
expansion and the generator's stream semantics."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bitio.bits import (
    bits_from_bytes,
    bits_from_hex,
    bits_from_int,
    bits_to_bytes,
    bits_to_hex,
    bits_to_int,
    bits_to_uint64,
    uint64_to_bits,
)
from repro.core.bitslice import bitslice, unbitslice
from repro.core.seeding import expand_seed_words
from repro.crc import CRC8_ATM, SerialCRC
from repro.gf2.lfsr_theory import berlekamp_massey
from repro.gf2.poly import (
    poly_degree,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_powmod,
)

# Shared strategies -----------------------------------------------------------

bit_arrays = st.integers(1, 200).flatmap(
    lambda n: st.binary(min_size=(n + 7) // 8, max_size=(n + 7) // 8).map(
        lambda raw: np.unpackbits(np.frombuffer(raw, np.uint8), bitorder="little")[:n]
    )
)

dtypes = st.sampled_from([np.uint8, np.uint32, np.uint64])

polys = st.integers(1, (1 << 24) - 1)

common = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# Bitslice transpose ----------------------------------------------------------


class TestBitsliceRoundtrip:
    @common
    @given(
        n_lanes=st.integers(1, 70),
        n_bits=st.integers(1, 40),
        dtype=dtypes,
        data=st.data(),
    )
    def test_roundtrip(self, n_lanes, n_bits, dtype, data):
        raw = data.draw(
            st.binary(
                min_size=(n_lanes * n_bits + 7) // 8, max_size=(n_lanes * n_bits + 7) // 8
            )
        )
        bits = np.unpackbits(np.frombuffer(raw, np.uint8), bitorder="little")[
            : n_lanes * n_bits
        ].reshape(n_lanes, n_bits)
        planes = bitslice(bits, dtype=dtype)
        assert planes.dtype == np.dtype(dtype)
        back = unbitslice(planes, n_lanes)
        assert np.array_equal(back, bits)

    @common
    @given(n_lanes=st.integers(1, 64), dtype=dtypes)
    def test_column_major_semantics(self, n_lanes, dtype):
        # Plane b, lane k bit == row-major bit (k, b) by construction.
        rng = np.random.default_rng(n_lanes)
        bits = rng.integers(0, 2, (n_lanes, 8), dtype=np.uint8)
        planes = bitslice(bits, dtype=dtype)
        width = np.dtype(dtype).itemsize * 8
        for k in (0, n_lanes - 1):
            for b in (0, 7):
                lane_bit = (int(planes[b, k // width]) >> (k % width)) & 1
                assert lane_bit == bits[k, b]


# Bit packing -----------------------------------------------------------------


class TestBitioRoundtrips:
    @common
    @given(data=st.binary(min_size=0, max_size=64))
    def test_bytes_roundtrip(self, data):
        assert bits_to_bytes(bits_from_bytes(data)) == data

    @common
    @given(bits=bit_arrays)
    def test_hex_roundtrip(self, bits):
        hx = bits_to_hex(bits)
        back = bits_from_hex(hx, n_bits=bits.size)
        assert np.array_equal(back, bits)

    @common
    @given(value=st.integers(0, (1 << 128) - 1), extra=st.integers(0, 8))
    def test_int_roundtrip(self, value, extra):
        n_bits = max(value.bit_length(), 1) + extra
        assert bits_to_int(bits_from_int(value, n_bits)) == value

    @common
    @given(bits=bit_arrays)
    def test_uint64_roundtrip(self, bits):
        words = bits_to_uint64(bits)
        assert np.array_equal(uint64_to_bits(words, n_bits=bits.size), bits)


# GF(2) polynomial algebra ----------------------------------------------------


class TestGF2Algebra:
    @common
    @given(a=polys, b=polys)
    def test_mul_commutative(self, a, b):
        assert poly_mul(a, b) == poly_mul(b, a)

    @common
    @given(a=polys, b=polys, c=polys)
    def test_mul_distributes_over_xor(self, a, b, c):
        assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)

    @common
    @given(a=st.integers(0, (1 << 24) - 1), b=polys)
    def test_divmod_invariant(self, a, b):
        q, r = poly_divmod(a, b)
        assert poly_mul(q, b) ^ r == a
        assert r == 0 or poly_degree(r) < poly_degree(b)

    @common
    @given(a=polys, b=polys)
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        assert poly_mod(a, g) == 0
        assert poly_mod(b, g) == 0

    @common
    @given(base=polys, e1=st.integers(0, 64), e2=st.integers(0, 64), mod=st.integers(2, (1 << 16) - 1))
    def test_powmod_exponent_addition(self, base, e1, e2, mod):
        lhs = poly_mod(poly_mul(poly_powmod(base, e1, mod), poly_powmod(base, e2, mod)), mod)
        assert lhs == poly_powmod(base, e1 + e2, mod)


# Berlekamp-Massey ------------------------------------------------------------


class TestBerlekampMassey:
    @common
    @given(n=st.integers(2, 10), seed=st.integers(1, 1000))
    def test_lfsr_stream_complexity_bounded(self, n, seed):
        from repro.core.lfsr import ReferenceLFSR

        lfsr = ReferenceLFSR(n)
        lfsr.seed(1 + seed % ((1 << n) - 1))
        stream = lfsr.run(4 * n)
        assert berlekamp_massey(stream) <= n

    @common
    @given(bits=bit_arrays)
    def test_complexity_bounds(self, bits):
        c = berlekamp_massey(bits)
        assert 0 <= c <= bits.size


# CRC algebra -----------------------------------------------------------------


class TestCRCProperties:
    @common
    @given(n=st.integers(8, 96), data=st.data())
    def test_linearity(self, n, data):
        a = np.array(data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), np.uint8)
        b = np.array(data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), np.uint8)
        crc = SerialCRC(CRC8_ATM)  # init == 0: CRC is linear
        assert crc.checksum(a ^ b) == crc.checksum(a) ^ crc.checksum(b)

    @common
    @given(n=st.integers(8, 64), data=st.data())
    def test_bitsliced_matches_serial(self, n, data):
        from repro.core.engine import BitslicedEngine
        from repro.crc import BitslicedCRC

        lanes = data.draw(st.integers(1, 20))
        msgs = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 1), min_size=n, max_size=n),
                    min_size=lanes,
                    max_size=lanes,
                )
            ),
            np.uint8,
        )
        bs = BitslicedCRC(CRC8_ATM, BitslicedEngine(n_lanes=lanes, dtype=np.uint8))
        got = bs.checksum_messages(msgs)
        ser = SerialCRC(CRC8_ATM)
        for k in range(lanes):
            assert int(got[k]) == ser.checksum(msgs[k])


# Seed expansion --------------------------------------------------------------


class TestSeedExpansionProperties:
    @common
    @given(seed=st.integers(0, (1 << 64) - 1), n=st.integers(1, 64))
    def test_prefix_stability(self, seed, n):
        small = expand_seed_words(seed, n)
        large = expand_seed_words(seed, n + 16)
        assert np.array_equal(large[:n], small)

    @common
    @given(seed=st.integers(0, (1 << 32) - 1))
    def test_streams_never_collide(self, seed):
        a = expand_seed_words(seed, 32, stream=0)
        b = expand_seed_words(seed, 32, stream=3)
        assert not np.intersect1d(a, b).size


# Generator stream semantics --------------------------------------------------


class TestGeneratorProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        algorithm=st.sampled_from(["mickey2", "xorwow", "philox"]),
        splits=st.lists(st.integers(1, 300), min_size=2, max_size=5),
    )
    def test_stream_prefix_property(self, algorithm, splits):
        """Drawing in chunks must reproduce the one-shot stream."""
        from repro.core.generator import BSRNG

        total = sum(splits)
        chunked = BSRNG(algorithm, seed=1, lanes=64)
        parts = b"".join(chunked.random_bytes(k) for k in splits)
        oneshot = BSRNG(algorithm, seed=1, lanes=64).random_bytes(total)
        assert parts == oneshot

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(1, 500))
    def test_uint32_view_consistency(self, n):
        from repro.core.generator import BSRNG

        words32 = BSRNG("xorwow", seed=2, lanes=64).random_uint32(n)
        raw = BSRNG("xorwow", seed=2, lanes=64).random_bytes(4 * n)
        assert words32.tobytes() == raw


class TestSkipBytesProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        algorithm=st.sampled_from(["mickey2", "aes128ctr", "philox", "chacha20", "xorwow"]),
        skip=st.integers(0, 200_000),
        take=st.integers(1, 512),
    )
    def test_skip_equals_discard(self, algorithm, skip, take):
        """skip_bytes(k) then read == read past the first k bytes, for
        counter kernels (O(1) fast path) and clocked kernels alike."""
        from repro.core.generator import BSRNG

        ref = BSRNG(algorithm, seed=3, lanes=64).random_bytes(skip + take)
        rng = BSRNG(algorithm, seed=3, lanes=64)
        rng.skip_bytes(skip)
        assert rng.random_bytes(take) == ref[skip:]

    def test_skip_negative_rejected(self):
        from repro.core.generator import BSRNG
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            BSRNG("xorwow", seed=1, lanes=64).skip_bytes(-1)
