"""The battery core: run ordered plugins over sequences, NIST-aggregate.

This is the single loop behind :func:`repro.nist.run_suite` (and, per
shard, :func:`repro.nist.run_suite_parallel`): it replicates the legacy
driver exactly — same sequence/test iteration order, same equal-length
validation, same skip/drop bookkeeping, same per-test timing metric —
so a plugin-driven battery reproduces the historical
:class:`~repro.nist.suite.SuiteReport` bit-for-bit
(``tests/test_qa_conformance.py`` holds it to that).

Semantics preserved from the legacy loop:

* every sub-test p-value enters the aggregation as its own sample;
* a plugin that skips a sequence increments its drop count and records
  the *first* skip reason;
* a plugin that skipped every sequence lands in ``skipped``; partial
  drops aggregate the surviving samples and land in ``errors``;
* mixed-length sequence sets raise
  :class:`~repro.errors.SpecificationError` before any test runs on the
  offending sequence;
* per-test wall time lands in ``repro_nist_test_seconds{test=...}``
  when metrics are enabled (skips included — observed cost is cost).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.errors import SpecificationError
from repro.nist.suite import SuiteReport, summarize_pvalues
from repro.qa.plugin_api import QAPlugin

__all__ = ["run_battery"]


def run_battery(
    sequence_source: Callable[[int], np.ndarray] | Iterable[np.ndarray],
    n_sequences: int,
    plugins: Sequence[QAPlugin],
) -> SuiteReport:
    """Run *plugins* (in order) over *n_sequences* sequences and aggregate.

    Parameters
    ----------
    sequence_source:
        Either ``f(i) -> bits`` or an iterable of bit arrays.
    n_sequences:
        How many sequences to draw.
    plugins:
        Ordered, uniquely named battery plugins; their order is the
        report's column order.
    """
    plugins = list(plugins)
    names = [p.name for p in plugins]
    if len(set(names)) != len(names):
        raise SpecificationError(f"duplicate plugin names in battery: {names}")
    if callable(sequence_source):
        getter = sequence_source
    else:
        seqs = list(sequence_source)
        getter = lambda i: seqs[i]  # noqa: E731

    collected: dict[str, list[float]] = {name: [] for name in names}
    reasons: dict[str, str] = {}
    dropped: dict[str, int] = {name: 0 for name in names}
    timed = obs.metrics_enabled()
    n_bits = 0
    for i in range(n_sequences):
        bits = np.asarray(getter(i))
        if i == 0:
            n_bits = bits.size
        elif bits.size != n_bits:
            raise SpecificationError(
                f"sequence {i} has {bits.size} bits, expected {n_bits} — "
                "a battery aggregates equal-length sequences only"
            )
        for plugin in plugins:
            t0 = time.perf_counter() if timed else 0.0
            try:
                result = plugin.run(bits)
            finally:
                if timed:
                    obs.observe(
                        "repro_nist_test_seconds",
                        time.perf_counter() - t0,
                        test=plugin.name,
                    )
            if not result.ok:
                dropped[plugin.name] += 1
                reasons.setdefault(plugin.name, result.reason)
                continue
            collected[plugin.name].extend(result.p_values)

    report = SuiteReport(n_sequences=n_sequences, n_bits=n_bits)
    for name in names:
        if collected[name]:
            report.per_test[name] = summarize_pvalues(collected[name])
        else:
            report.skipped[name] = reasons.get(name, "no data")
        if dropped[name]:
            report.errors[name] = dropped[name]
    return report
